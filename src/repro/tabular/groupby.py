"""Split/apply/combine over :class:`~repro.tabular.Table`.

The analysis pipeline's dominant access pattern is "group the audit
rows by census block group, compute a rate per group, then roll the
groups up by state or ISP". :class:`GroupBy` supports both steps:
named-aggregation via :meth:`agg` and arbitrary per-group reduction via
:meth:`apply`.

Index construction is vectorized: key columns are factorized
(:func:`~repro.tabular.frame.group_codes`), one stable argsort lays
every group out as a contiguous segment with rows in original order,
and segment boundaries come from a single ``diff`` — no per-row Python
loop, no tuple hashing. Groups are numbered in **first-seen order**
(the order the old dict index produced), so every downstream fold —
and therefore every audit metric — sees byte-identical operand order.

:meth:`agg` accepts two kinds of reducer:

* a **callable** (``np.sum``, a lambda) — invoked once per group on
  the group's contiguous column slice, values in original row order,
  bitwise-identical to the historical per-group behavior;
* a **kernel name** (``"sum"``, ``"mean"``, ``"count"``, ``"min"``,
  ``"max"``, ``"first"``, ``"last"``, ``"any"``, ``"all"``) — computed
  for *all* groups at once with ``ufunc.reduceat`` segment reductions.
  Kernel sums accumulate left-to-right per segment (not numpy's
  pairwise ``np.sum``), so prefer kernels for speed and callables when
  bit-compatibility with a per-group ``np.sum`` matters.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.tabular.frame import Table, group_codes

__all__ = ["GroupBy"]

Aggregation = tuple[str, Callable[[np.ndarray], Any] | str]

# Segment kernels: name -> (values_for_all_groups)(gathered, starts, ends).
_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]] = {
    "sum": lambda g, s, e: np.add.reduceat(g, s),
    "mean": lambda g, s, e: np.add.reduceat(g, s) / (e - s),
    "count": lambda g, s, e: (e - s).astype(np.int64),
    "min": lambda g, s, e: np.minimum.reduceat(g, s),
    "max": lambda g, s, e: np.maximum.reduceat(g, s),
    "first": lambda g, s, e: g[s],
    "last": lambda g, s, e: g[e - 1],
    "any": lambda g, s, e: np.logical_or.reduceat(g, s).astype(bool),
    "all": lambda g, s, e: np.logical_and.reduceat(g, s).astype(bool),
}


class GroupBy:
    """Lazy grouping of a table by one or more key columns."""

    def __init__(self, table: Table, keys: Sequence[str]):
        if not keys:
            raise ValueError("group_by needs at least one key column")
        for key in keys:
            if key not in table:
                raise KeyError(f"no column {key!r} to group by")
        self._table = table
        self._keys = list(keys)
        self._build_segments()
        # key tuple -> segment position, built only if group() is used.
        self._lookup: dict[tuple[Any, ...], int] | None = None

    def _build_segments(self) -> None:
        """Factorize the keys into contiguous per-group segments.

        ``_row_order`` holds every row index, grouped; ``_starts`` /
        ``_ends`` bound segment ``g`` (in first-seen group order), and
        ``_first_rows[g]`` is the group's first-occurrence row. The
        stable argsort keeps each segment's rows in original order.
        """
        table_len = len(self._table)
        columns = [self._table[key] for key in self._keys]
        codes = group_codes(columns, table_len)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        if table_len:
            change = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        else:
            change = np.empty(0, dtype=np.intp)
        starts = np.concatenate((np.zeros(1, dtype=np.intp), change))
        ends = np.concatenate((change,
                               np.asarray([table_len], dtype=np.intp)))
        if table_len == 0:
            starts = starts[:0]
            ends = ends[:0]
        # The stable sort puts each group's minimal row first, so
        # sorting groups by their first row recovers first-seen order.
        firsts = (order[starts] if table_len
                  else np.empty(0, dtype=np.intp))
        seen = np.argsort(firsts, kind="stable")
        self._row_order = order
        # Sorted-order boundaries (monotonic — what ufunc.reduceat
        # needs) and the permutation into first-seen group order.
        self._sorted_starts = starts
        self._sorted_ends = ends
        self._seen = seen
        self._starts = starts[seen]
        self._ends = ends[seen]
        self._first_rows = firsts[seen]

    def _group_rows(self, position: int) -> np.ndarray:
        """Row indices of one group (original row order)."""
        return self._row_order[self._starts[position]:self._ends[position]]

    def _key_tuple(self, position: int, columns: list[np.ndarray]
                   ) -> tuple[Any, ...]:
        first = self._first_rows[position]
        return tuple(column[first] for column in columns)

    def _key_lookup(self) -> dict[tuple[Any, ...], int]:
        if self._lookup is None:
            columns = [self._table[key] for key in self._keys]
            self._lookup = {
                self._key_tuple(position, columns): position
                for position in range(len(self))
            }
        return self._lookup

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._starts.size)

    @property
    def keys(self) -> tuple[str, ...]:
        """The grouping column names."""
        return tuple(self._keys)

    def groups(self) -> Iterator[tuple[tuple[Any, ...], Table]]:
        """Iterate ``(key_tuple, sub_table)`` pairs in first-seen order."""
        columns = [self._table[key] for key in self._keys]
        for position in range(len(self)):
            yield (self._key_tuple(position, columns),
                   self._table.take(self._group_rows(position)))

    def group(self, *key: Any) -> Table:
        """Return the sub-table for one key tuple."""
        lookup = tuple(key)
        positions = self._key_lookup()
        if lookup not in positions:
            raise KeyError(f"no group {lookup!r}")
        return self._table.take(self._group_rows(positions[lookup]))

    def _key_columns(self) -> dict[str, np.ndarray]:
        """The key columns of the output table, one row per group."""
        return {key: self._table[key][self._first_rows]
                for key in self._keys}

    def size(self) -> Table:
        """Return a table of group sizes (columns: keys + ``count``)."""
        columns = self._key_columns()
        columns["count"] = (self._ends - self._starts).astype(np.int64)
        return Table(columns)

    def agg(self, **aggregations: Aggregation) -> Table:
        """Aggregate columns per group.

        Each keyword is an output column name mapped to a
        ``(source_column, reducer)`` pair, where the reducer is a
        callable or a kernel name::

            table.group_by("state").agg(
                served=("is_served", "sum"),      # segment kernel
                queried=("is_served", len),       # per-group callable
            )
        """
        if not aggregations:
            raise ValueError("agg needs at least one aggregation")
        for name, (source, reducer) in aggregations.items():
            if source not in self._table:
                raise KeyError(f"aggregation {name!r} reads missing column {source!r}")
            if isinstance(reducer, str) and reducer not in _KERNELS:
                raise ValueError(
                    f"aggregation {name!r} names unknown kernel {reducer!r}; "
                    f"available: {sorted(_KERNELS)}"
                )
        columns: dict[str, Any] = self._key_columns()
        starts, ends = self._starts, self._ends
        gathered: dict[str, np.ndarray] = {}
        for name, (source, reducer) in aggregations.items():
            if source not in gathered:
                gathered[source] = self._table[source][self._row_order]
            values = gathered[source]
            if isinstance(reducer, str):
                if values.dtype.kind == "b" and reducer in ("sum", "mean"):
                    # np.add.reduceat on bool is logical-or; count, not.
                    values = values.astype(np.int64)
                if starts.size:
                    # Kernels need reduceat's monotonic boundaries, so
                    # reduce in sorted-group order and permute the
                    # per-group results into first-seen order.
                    columns[name] = _KERNELS[reducer](
                        values, self._sorted_starts,
                        self._sorted_ends)[self._seen]
                else:
                    columns[name] = _KERNELS["count"](values, starts, ends)
            else:
                columns[name] = [
                    reducer(values[start:end])
                    for start, end in zip(starts, ends)
                ]
        return Table(columns)

    def apply(self, func: Callable[[Table], Mapping[str, Any]]) -> Table:
        """Reduce each group with ``func`` returning a dict of outputs.

        Every group's result must expose the same output keys as the
        first group's — heterogeneous keys would leave holes in the
        output columns and raise ``ValueError`` naming the offending
        group.
        """
        output_names: list[str] | None = None
        buffers: dict[str, list[Any]] = {}
        key_columns = [self._table[key] for key in self._keys]
        for position in range(len(self)):
            result = dict(func(self._table.take(self._group_rows(position))))
            overlap = set(result) & set(self._keys)
            if overlap:
                raise ValueError(f"apply result overwrites key columns {sorted(overlap)}")
            if output_names is None:
                output_names = list(result)
                buffers = {name: [] for name in output_names}
            elif set(result) != set(output_names):
                key = self._key_tuple(position, key_columns)
                raise ValueError(
                    f"apply result for group {key!r} has keys "
                    f"{sorted(result)}, expected {sorted(output_names)}"
                )
            for name in output_names:
                buffers[name].append(result[name])
        if output_names is None:
            return Table({key: [] for key in self._keys})
        columns: dict[str, Any] = self._key_columns()
        columns.update(buffers)
        return Table(columns)
