"""Hash joins between tables.

Used to attach census-block-group metadata (population density, rural
flag, state) to per-address audit rows, and to merge USAC certification
records with BQT query results.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tabular.frame import Table

__all__ = ["join"]


def join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join ``left`` and ``right`` on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``. Non-key columns of ``right``
    that collide with ``left`` names are suffixed. For a left join with
    no match, numeric right columns become NaN and object columns become
    ``None``. Right rows matching multiple left rows fan out as in SQL.
    """
    keys = [on] if isinstance(on, str) else list(on)
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type {how!r}")
    for key in keys:
        if key not in left:
            raise KeyError(f"left table lacks join key {key!r}")
        if key not in right:
            raise KeyError(f"right table lacks join key {key!r}")

    right_index: dict[tuple[Any, ...], list[int]] = {}
    right_key_columns = [right[key] for key in keys]
    for row_index in range(len(right)):
        key = tuple(column[row_index] for column in right_key_columns)
        right_index.setdefault(key, []).append(row_index)

    left_key_columns = [left[key] for key in keys]
    left_rows: list[int] = []
    right_rows: list[int] = []  # -1 encodes "no match" for left joins
    for row_index in range(len(left)):
        key = tuple(column[row_index] for column in left_key_columns)
        matches = right_index.get(key)
        if matches:
            for match in matches:
                left_rows.append(row_index)
                right_rows.append(match)
        elif how == "left":
            left_rows.append(row_index)
            right_rows.append(-1)

    left_take = np.asarray(left_rows, dtype=np.intp)
    right_take = np.asarray(right_rows, dtype=np.intp)
    matched = right_take >= 0

    columns: dict[str, np.ndarray] = {}
    for name in left.column_names:
        columns[name] = left[name][left_take] if left_take.size else left[name][:0]

    key_set = set(keys)
    for name in right.column_names:
        if name in key_set:
            continue
        out_name = name if name not in columns else f"{name}{suffix}"
        source = right[name]
        if right_take.size == 0:
            columns[out_name] = source[:0]
            continue
        if matched.all():
            columns[out_name] = source[right_take]
        else:
            if source.dtype.kind in ("f", "i", "u", "b"):
                filled = np.full(right_take.size, np.nan, dtype=float)
                filled[matched] = source[right_take[matched]].astype(float)
            else:
                filled = np.full(right_take.size, None, dtype=object)
                filled[matched] = source[right_take[matched]]
            columns[out_name] = filled
    return Table(columns)
