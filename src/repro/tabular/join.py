"""Hash joins between tables.

Used to attach census-block-group metadata (population density, rural
flag, state) to per-address audit rows, and to merge USAC certification
records with BQT query results.

The probe is vectorized: both sides' key columns are factorized over
their concatenation (equal keys get equal codes regardless of side),
the right side's codes are stable-argsorted, and every left row finds
its match run with one ``np.searchsorted`` pair — no per-row Python
loop or tuple hashing. Output row order is identical to the historical
dict probe: left rows in order, each fanning out over its right
matches in ascending right-row order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tabular.frame import Table, group_codes

__all__ = ["join"]


def join(
    left: Table,
    right: Table,
    on: str | Sequence[str],
    how: str = "inner",
    suffix: str = "_right",
) -> Table:
    """Join ``left`` and ``right`` on equal key columns.

    ``how`` is ``"inner"`` or ``"left"``. Non-key columns of ``right``
    that collide with ``left`` names are suffixed. For a left join with
    no match, right object columns fill with ``None`` and right numeric
    columns fill with NaN — which promotes int/bool right columns to
    float64 in the output, since NaN is only representable there. Right
    rows matching multiple left rows fan out as in SQL.
    """
    keys = [on] if isinstance(on, str) else list(on)
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type {how!r}")
    for key in keys:
        if key not in left:
            raise KeyError(f"left table lacks join key {key!r}")
        if key not in right:
            raise KeyError(f"right table lacks join key {key!r}")

    n_left, n_right = len(left), len(right)
    merged_keys = [
        np.concatenate((left[key], right[key])) for key in keys
    ]
    codes = group_codes(merged_keys, n_left + n_right)
    left_codes, right_codes = codes[:n_left], codes[n_left:]

    # Sort the right side's codes once; each left row's matches are
    # then a contiguous run found by binary search. The stable sort
    # keeps equal-key right rows in ascending original order.
    right_order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[right_order]
    lo = np.searchsorted(sorted_right, left_codes, side="left")
    hi = np.searchsorted(sorted_right, left_codes, side="right")
    counts = hi - lo

    if how == "inner":
        out_counts = counts
    else:
        out_counts = np.maximum(counts, 1)
    total = int(out_counts.sum())
    left_take = np.repeat(np.arange(n_left, dtype=np.intp), out_counts)
    # Per-output-slot offset within its left row's fan-out run.
    slot_starts = np.concatenate(
        (np.zeros(1, dtype=np.intp), np.cumsum(out_counts)[:-1])
    ) if n_left else np.empty(0, dtype=np.intp)
    within = np.arange(total, dtype=np.intp) - np.repeat(slot_starts, out_counts)
    right_take = np.full(total, -1, dtype=np.intp)
    matched_slots = np.repeat(counts > 0, out_counts)
    if total:
        probe = (np.repeat(lo, out_counts) + within)[matched_slots]
        right_take[matched_slots] = right_order[probe]
    matched = right_take >= 0

    columns: dict[str, np.ndarray] = {}
    for name in left.column_names:
        columns[name] = left[name][left_take] if left_take.size else left[name][:0]

    key_set = set(keys)
    for name in right.column_names:
        if name in key_set:
            continue
        out_name = name if name not in columns else f"{name}{suffix}"
        source = right[name]
        if right_take.size == 0:
            columns[out_name] = source[:0]
            continue
        if matched.all():
            columns[out_name] = source[right_take]
        else:
            if source.dtype.kind in ("f", "i", "u", "b"):
                filled = np.full(right_take.size, np.nan, dtype=float)
                filled[matched] = source[right_take[matched]].astype(float)
            else:
                filled = np.full(right_take.size, None, dtype=object)
                filled[matched] = source[right_take[matched]]
            columns[out_name] = filled
    return Table(columns)
