"""Calibration constants lifted from the paper.

Every number here cites where in the paper it comes from. The world
builder consumes these; the benchmark harness compares its measured
outputs back against them (EXPERIMENTS.md records both sides).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = [
    "TABLE3_QUERIED_ADDRESSES",
    "PAPER_SERVICEABILITY_BY_ISP",
    "PAPER_COMPLIANCE_BY_ISP",
    "PAPER_AGGREGATE_SERVICEABILITY",
    "PAPER_AGGREGATE_COMPLIANCE",
    "Q3OutcomeShares",
    "TYPE_A_SHARES",
    "TYPE_B_SHARES",
    "PCT_INCREASE_WHEN_CAF_WINS",
    "PCT_INCREASE_WHEN_MONOPOLY_WINS",
    "PCT_INCREASE_WHEN_COMPETITION_WINS",
    "Q3_BLOCK_TYPE_COUNTS",
    "COMPETITION_OVERLAP_PROBABILITY",
    "NON_BQT_PROVIDER_PROBABILITY",
]

# Table 3: CAF street addresses the authors collected, per state × ISP.
# Used as the *relative footprint* when generating certifications.
TABLE3_QUERIED_ADDRESSES: Mapping[str, Mapping[str, int]] = MappingProxyType({
    "CA": MappingProxyType({"att": 69_711, "frontier": 48_447}),
    "GA": MappingProxyType({"att": 37_772, "centurylink": 464, "frontier": 850}),
    "IL": MappingProxyType({"att": 8_745, "centurylink": 1_461,
                            "consolidated": 1_332, "frontier": 33_260}),
    "NH": MappingProxyType({"consolidated": 7_229}),
    "NC": MappingProxyType({"att": 12_525, "centurylink": 28_411,
                            "frontier": 7_834}),
    "OH": MappingProxyType({"att": 22_185, "centurylink": 25_780,
                            "frontier": 49_631}),
    "UT": MappingProxyType({"centurylink": 1_749, "frontier": 2_332}),
    "AL": MappingProxyType({"att": 23_862, "centurylink": 10_083,
                            "consolidated": 295, "frontier": 4_401}),
    "FL": MappingProxyType({"att": 11_029, "centurylink": 10_104,
                            "consolidated": 4_010, "frontier": 578}),
    "IA": MappingProxyType({"centurylink": 9_757, "frontier": 4_092}),
    "MS": MappingProxyType({"att": 38_069, "centurylink": 2, "frontier": 1_237}),
    "NE": MappingProxyType({"centurylink": 3_986, "frontier": 2_648}),
    "NJ": MappingProxyType({"centurylink": 980}),
    "VT": MappingProxyType({"consolidated": 9_940}),
    "WI": MappingProxyType({"att": 9_349, "centurylink": 19_064,
                            "frontier": 14_456}),
})

# Section 4.1 headline estimates.
PAPER_AGGREGATE_SERVICEABILITY = 0.5545
PAPER_SERVICEABILITY_BY_ISP: Mapping[str, float] = MappingProxyType({
    "att": 0.3153,
    "frontier": 0.7071,
    "centurylink": 0.9042,
    "consolidated": 0.8395,
})

# Section 4.2 headline estimates.
PAPER_AGGREGATE_COMPLIANCE = 0.3303
PAPER_COMPLIANCE_BY_ISP: Mapping[str, float] = MappingProxyType({
    "att": 0.1658,
    "centurylink": 0.6930,
    "frontier": 0.15,
    "consolidated": 0.8556,
})


@dataclass(frozen=True)
class Q3OutcomeShares:
    """Block-level outcome mix for one Q3 comparison (Figures 4a/5a)."""

    tie: float
    caf_better: float
    rival_better: float

    def __post_init__(self) -> None:
        total = self.tie + self.caf_better + self.rival_better
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"outcome shares must sum to 1, got {total}")

    def as_mapping(self) -> dict[str, float]:
        """Outcome → share, in a stable order."""
        return {"tie": self.tie, "caf": self.caf_better, "rival": self.rival_better}


# Figure 4a: Type A (CAF + unregulated monopoly) block outcomes.
TYPE_A_SHARES = Q3OutcomeShares(tie=0.55, caf_better=0.27, rival_better=0.18)
# Figure 5a: Type B (CAF + competition) block outcomes.
TYPE_B_SHARES = Q3OutcomeShares(tie=0.37, caf_better=0.32, rival_better=0.31)

# Percentage-increase distributions, expressed as (median, p80) of the
# *fractional* improvement. Figure 4c: CAF over monopoly where CAF wins
# — median 75%, 80th percentile 400%. Figure 11b: monopoly over CAF
# where monopoly wins — median 45%, p80 130%. Figures 11c/d: similar
# scale for competition.
PCT_INCREASE_WHEN_CAF_WINS = (0.75, 4.00)
PCT_INCREASE_WHEN_MONOPOLY_WINS = (0.45, 1.30)
PCT_INCREASE_WHEN_COMPETITION_WINS = (0.50, 1.50)

# Section 4.3: 8.76k Type A, 0.56k Type B, 0.10k Type C analyzed blocks.
Q3_BLOCK_TYPE_COUNTS = MappingProxyType({"A": 8_760, "B": 560, "C": 100})

# Derived block-classification probabilities: of 9.42k analyzed blocks,
# ~7% have a cable competitor footprint (Type B + C).
COMPETITION_OVERLAP_PROBABILITY = 0.07
# Blocks dropped by the Q3 exclusivity filter because a provider BQT
# cannot query operates there (calibrated so the filtered/unfiltered
# ratio resembles the paper's 9.4k analyzed of 20.8k candidates,
# after also dropping blocks with no served non-CAF neighbor).
NON_BQT_PROVIDER_PROBABILITY = 0.12
