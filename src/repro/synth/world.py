"""Construction of one coherent synthetic study universe.

``build_world`` runs these passes, all deterministic in the scenario
seed:

1. **Geography** — a synthetic :class:`~repro.geo.entities
   .StateGeography` per study state, sized to host the state's CAF
   footprint.
2. **Certification** — each (state, ISP) cell of Table 3's footprint is
   expanded into CAF street addresses spread over disjoint CBGs with
   the Figure 1c size distribution, certified through the HUBB portal,
   and funded in the disbursement ledger.
3. **Ground truth (Q1/Q2)** — per-address service truth drawn from the
   calibrated ISP profiles.
4. **Q3 structure** — in the seven Q3 states, every CAF census block
   gets non-CAF (Zillow) neighbors, a competition classification
   (monopoly-only / cable overlap / non-BQT provider present), Form 477
   and National Broadband Map records, and block-coherent incumbent
   speeds at non-CAF addresses whose relation to the block's CAF
   average follows the paper's Figure 4a/5a outcome shares.
5. **Websites** — the six BQT storefront simulators wired to truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.addresses.generator import AddressGenerator
from repro.addresses.models import StreetAddress
from repro.addresses.zillow import ZillowFeed
from repro.bqt.engine import BqtEngine, EngineConfig
from repro.bqt.proxy import ProxyPool
from repro.bqt.websites import IspWebsite, build_website
from repro.fcc.broadband_map import BroadbandMap, FabricRecord
from repro.fcc.form477 import AvailabilityRecord, Form477
from repro.geo.entities import BlockGroup, CensusBlock, StateGeography
from repro.geo.fips import state_by_abbreviation
from repro.geo.generator import GeographyConfig, generate_state_geography
from repro.isp.deployment import (
    GroundTruth,
    ServiceTruth,
    sample_service_truth,
)
from repro.isp.plans import BroadbandPlan
from repro.isp.profiles import PROFILES, profile_for
from repro.stats.distributions import allocate_counts, lognormal_sizes, stable_rng
from repro.synth.calibration import (
    COMPETITION_OVERLAP_PROBABILITY,
    NON_BQT_PROVIDER_PROBABILITY,
    PCT_INCREASE_WHEN_CAF_WINS,
    PCT_INCREASE_WHEN_COMPETITION_WINS,
    PCT_INCREASE_WHEN_MONOPOLY_WINS,
    Q3OutcomeShares,
    TABLE3_QUERIED_ADDRESSES,
    TYPE_A_SHARES,
    TYPE_B_SHARES,
)
from repro.synth.scenario import ScenarioConfig
from repro.usac.dataset import CafMapDataset
from repro.usac.disbursements import Disbursement, DisbursementLedger
from repro.usac.generator import certified_speed_for
from repro.usac.hubb import CertificationBatch, HubbPortal
from repro.usac.schema import DeploymentRecord

__all__ = ["World", "BlockCompetition", "build_world"]

CABLE_ISPS = ("xfinity", "spectrum")


@dataclass(frozen=True)
class BlockCompetition:
    """Q3 classification of one CAF census block."""

    block_geoid: str
    incumbent_isp_id: str
    # "monopoly" (Type A candidate), "overlap_full" (Type B candidate),
    # "overlap_partial" (Type C candidate), "non_bqt" (filtered out).
    kind: str
    cable_isp_id: str | None = None

    def __post_init__(self) -> None:
        kinds = ("monopoly", "overlap_full", "overlap_partial", "non_bqt")
        if self.kind not in kinds:
            raise ValueError(f"kind must be one of {kinds}")
        if self.kind.startswith("overlap") and self.cable_isp_id is None:
            raise ValueError("overlap blocks need a cable ISP")


@dataclass
class World:
    """Everything the data-collection pipeline runs against."""

    config: ScenarioConfig
    geographies: dict[str, StateGeography]
    block_groups: dict[str, BlockGroup] = field(repr=False)
    blocks: dict[str, CensusBlock] = field(repr=False)
    hubb: HubbPortal = field(repr=False)
    ledger: DisbursementLedger = field(repr=False)
    caf_addresses: dict[str, StreetAddress] = field(repr=False)
    caf_by_isp_state: dict[tuple[str, str], list[StreetAddress]] = field(repr=False)
    zillow: ZillowFeed = field(repr=False)
    ground_truth: GroundTruth = field(repr=False)
    form477: Form477 = field(repr=False)
    broadband_map: BroadbandMap = field(repr=False)
    block_competition: dict[str, BlockCompetition] = field(repr=False)
    websites: dict[str, IspWebsite] = field(repr=False)

    @property
    def caf_map(self) -> CafMapDataset:
        """The USAC CAF Map assembled from the HUBB filings."""
        return self.hubb.caf_map

    def engine_for(
        self,
        isp_id: str,
        engine_config: EngineConfig | None = None,
        proxy_pool: ProxyPool | None = None,
    ) -> BqtEngine:
        """A fresh BQT engine against one ISP's website."""
        if isp_id not in self.websites:
            raise KeyError(f"no website for ISP {isp_id!r}")
        return BqtEngine(
            self.websites[isp_id],
            proxy_pool=proxy_pool or ProxyPool(seed=self.config.seed),
            config=engine_config,
            seed=self.config.seed,
        )

    def caf_addresses_by_cbg(
        self, isp_id: str, state: str
    ) -> dict[str, list[StreetAddress]]:
        """The ISP's certified addresses in a state, grouped by CBG."""
        grouped: dict[str, list[StreetAddress]] = {}
        for address in self.caf_by_isp_state.get((isp_id, state), []):
            grouped.setdefault(address.block_group_geoid, []).append(address)
        return grouped

    def caf_addresses_in_block(self, isp_id: str, block_geoid: str) -> list[StreetAddress]:
        """The incumbent's certified addresses in one census block."""
        competition = self.block_competition.get(block_geoid)
        if competition is None or competition.incumbent_isp_id != isp_id:
            return []
        return [
            self.caf_addresses[record.address_id]
            for record in self.caf_map.in_block(block_geoid)
            if record.isp_id == isp_id
        ]


# ----------------------------------------------------------------------
# Pass 1+2: geography and certification
# ----------------------------------------------------------------------

def _cbg_sizes_for(
    config: ScenarioConfig, rng: np.random.Generator, total: int
) -> list[int]:
    """Split ``total`` addresses into CBG-sized chunks (Figure 1c)."""
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        size = int(lognormal_sizes(
            rng, 1, config.cbg_size_median, config.cbg_size_sigma,
            minimum=1, maximum=config.max_cbg_size,
        )[0])
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def _build_state(
    config: ScenarioConfig,
    state_abbr: str,
    footprint: dict[str, int],
) -> tuple[StateGeography, dict[str, list[tuple[BlockGroup, int]]]]:
    """Generate one state's geography and the ISP → CBG allocation."""
    rng = stable_rng(config.seed, "world", state_abbr)
    per_isp_sizes = {
        isp_id: _cbg_sizes_for(
            config, stable_rng(config.seed, "world", state_abbr, isp_id),
            config.certified_count(state_abbr, count),
        )
        for isp_id, count in footprint.items()
    }
    total_cbgs = sum(len(sizes) for sizes in per_isp_sizes.values())
    # Scale the urban structure with the state: big, populous states get
    # more city kernels and wider density gradients, so CBGs in e.g.
    # California span the full density range of the paper's Figure 3.
    state = state_by_abbreviation(state_abbr)
    area = state.bounds.area_square_miles()
    geo_config = GeographyConfig(
        num_counties=max(1, math.ceil(total_cbgs / 12) + 1),
        blocks_per_block_group=config.blocks_per_cbg,
        num_cities=3 + round(state.population_millions / 10),
        decay_scale_miles=18.0 + math.sqrt(area) / 40.0,
    )
    geography = generate_state_geography(
        state_by_abbreviation(state_abbr), geo_config, seed=config.seed
    )
    available = list(geography.block_groups)
    order = rng.permutation(len(available))
    cursor = 0
    allocation: dict[str, list[tuple[BlockGroup, int]]] = {}
    for isp_id in sorted(per_isp_sizes):
        assigned = []
        for size in per_isp_sizes[isp_id]:
            block_group = available[int(order[cursor % len(order)])]
            cursor += 1
            assigned.append((block_group, size))
        allocation[isp_id] = assigned
    return geography, allocation


def _certify_state_isp(
    config: ScenarioConfig,
    state_abbr: str,
    isp_id: str,
    assignment: list[tuple[BlockGroup, int]],
    address_factory: AddressGenerator,
) -> tuple[list[StreetAddress], list[DeploymentRecord]]:
    """Generate one ISP's certified addresses and deployment records."""
    addresses: list[StreetAddress] = []
    records: list[DeploymentRecord] = []
    for block_group, cbg_count in assignment:
        rng = stable_rng(config.seed, "certify", isp_id, block_group.geoid)
        split = allocate_counts(
            cbg_count, rng.dirichlet(np.full(len(block_group.blocks), 0.6))
        )
        for block, block_count in zip(block_group.blocks, split):
            if block_count == 0:
                continue
            block_addresses = address_factory.generate_for_block(
                block, int(block_count), is_caf=True, namespace=f"caf-{isp_id}"
            )
            addresses.extend(block_addresses)
            for address in block_addresses:
                download, upload = certified_speed_for(isp_id, rng)
                records.append(DeploymentRecord(
                    address_id=address.address_id,
                    isp_id=isp_id,
                    state_abbreviation=state_abbr,
                    block_geoid=block.geoid,
                    longitude=address.location.longitude,
                    latitude=address.location.latitude,
                    households=1,
                    technology="fiber" if download >= 100 else "dsl",
                    certified_download_mbps=download,
                    certified_upload_mbps=upload,
                    certified_latency_ms=float(rng.uniform(20.0, 95.0)),
                ))
    return addresses, records


# ----------------------------------------------------------------------
# Pass 4: Q3 block-coherent structure
# ----------------------------------------------------------------------

def _delta_sampler(median: float, p80: float):
    """Lognormal fractional-improvement sampler hitting (median, p80)."""
    if median <= 0 or p80 <= median:
        raise ValueError("need 0 < median < p80")
    z80 = 0.8416212335729143  # standard-normal 80th percentile
    sigma = math.log(p80 / median) / z80
    mu = math.log(median)

    def sample(rng: np.random.Generator) -> float:
        return float(min(rng.lognormal(mean=mu, sigma=sigma), 10.0))

    return sample


_SAMPLE_CAF_WIN = _delta_sampler(*PCT_INCREASE_WHEN_CAF_WINS)
_SAMPLE_MONOPOLY_WIN = _delta_sampler(*PCT_INCREASE_WHEN_MONOPOLY_WINS)
_SAMPLE_COMPETITION_WIN = _delta_sampler(*PCT_INCREASE_WHEN_COMPETITION_WINS)


def _draw_outcome(shares: Q3OutcomeShares, rng: np.random.Generator) -> str:
    roll = rng.random()
    if roll < shares.tie:
        return "tie"
    if roll < shares.tie + shares.caf_better:
        return "caf"
    return "rival"


def _rival_speed(
    caf_speed: float,
    outcome: str,
    rng: np.random.Generator,
    win_sampler,
) -> float:
    """Incumbent's non-CAF-mode speed, given the block outcome."""
    if outcome == "tie":
        return caf_speed
    if outcome == "caf":
        return caf_speed / (1.0 + _SAMPLE_CAF_WIN(rng))
    return caf_speed * (1.0 + win_sampler(rng))


def _classify_block(
    incumbent: str, block: CensusBlock, rng: np.random.Generator
) -> BlockCompetition:
    roll = rng.random()
    if roll < NON_BQT_PROVIDER_PROBABILITY:
        return BlockCompetition(block.geoid, incumbent, "non_bqt")
    if roll < NON_BQT_PROVIDER_PROBABILITY + COMPETITION_OVERLAP_PROBABILITY:
        cable = CABLE_ISPS[int(rng.integers(len(CABLE_ISPS)))]
        kind = "overlap_full" if rng.random() < 0.85 else "overlap_partial"
        return BlockCompetition(block.geoid, incumbent, kind, cable_isp_id=cable)
    return BlockCompetition(block.geoid, incumbent, "monopoly")


def _incumbent_plan(
    isp_id: str, speed: float, rng: np.random.Generator
) -> BroadbandPlan:
    """A concrete plan for the incumbent at a given target speed."""
    profile = profile_for(isp_id)
    speed = max(speed, 0.5)
    return BroadbandPlan(
        name=f"{profile.info.name} {speed:.0f} Mbps",
        download_mbps=float(speed),
        upload_mbps=max(speed * profile.upload_ratio, 0.128),
        monthly_price_usd=profile.price_for_speed(speed, rng),
        technology="fiber" if speed >= 1000 else profile.info.primary_technology,
    )


def _block_caf_average(
    truth: GroundTruth, isp_id: str, addresses: list[StreetAddress]
) -> float:
    """Average advertised (marketing) speed over served CAF addresses."""
    speeds = []
    for address in addresses:
        state = truth.truth_for(isp_id, address.address_id)
        best = state.best_plan
        if state.serves and best is not None:
            speeds.append(best.download_mbps)
    return float(np.mean(speeds)) if speeds else 0.0


def _apply_q3_structure(
    config: ScenarioConfig,
    state_abbr: str,
    isp_id: str,
    block: CensusBlock,
    caf_here: list[StreetAddress],
    truth: GroundTruth,
    address_factory: AddressGenerator,
    form477: Form477,
    broadband_map: BroadbandMap,
) -> tuple[BlockCompetition, list[StreetAddress]]:
    """Build one Q3 block: classify, add neighbors, set coherent truth."""
    rng = stable_rng(config.seed, "q3", isp_id, block.geoid)
    competition = _classify_block(isp_id, block, rng)

    # Non-CAF (Zillow) neighbors.
    low, high = config.non_caf_fraction_range
    non_caf_count = max(
        config.min_non_caf_per_block,
        round(len(caf_here) * float(rng.uniform(low, high))),
    )
    neighbors = address_factory.generate_for_block(
        block, non_caf_count, is_caf=False, namespace="zillow"
    )

    # Availability datasets.
    incumbent_profile = profile_for(isp_id)
    form477.add(AvailabilityRecord(
        isp_id=isp_id,
        block_geoid=block.geoid,
        technology=incumbent_profile.info.primary_technology,
        max_download_mbps=100.0,
        max_upload_mbps=10.0,
    ))
    providers = [isp_id]
    if competition.cable_isp_id is not None:
        form477.add(AvailabilityRecord(
            isp_id=competition.cable_isp_id,
            block_geoid=block.geoid,
            technology="cable",
            max_download_mbps=1200.0,
            max_upload_mbps=35.0,
        ))
        providers.append(competition.cable_isp_id)
    if competition.kind == "non_bqt":
        form477.add(AvailabilityRecord(
            isp_id="smallisp-000",
            block_geoid=block.geoid,
            technology="fixed_wireless",
            max_download_mbps=25.0,
            max_upload_mbps=3.0,
        ))
        providers.append("smallisp-000")
    broadband_map.add(FabricRecord(
        location_id=f"fabric-{block.geoid}",
        block_geoid=block.geoid,
        provider_ids=tuple(providers),
    ))

    if competition.kind == "non_bqt":
        # Filtered out of Q3; neighbors exist but get no special truth.
        return competition, neighbors

    # Competition spillover (Figure 6): in a share of overlap blocks the
    # incumbent upgrades its CAF plant well beyond Type A levels.
    if competition.kind.startswith("overlap") and rng.random() < 0.35:
        boost_speed = float(rng.uniform(100.0, 300.0))
        for address in caf_here:
            state = truth.truth_for(isp_id, address.address_id)
            if state.serves and state.plans:
                truth.set_truth(isp_id, address.address_id, ServiceTruth(
                    serves=True,
                    plans=(_incumbent_plan(isp_id, boost_speed, rng),),
                    existing_subscriber=state.existing_subscriber,
                    tier_label=_incumbent_plan(isp_id, boost_speed, rng).tier_label,
                ))

    # Homogenize the incumbent's plans across the block's served CAF
    # addresses: a real storefront offers one plan set per plant
    # segment, which is what makes the paper's 55% exact-tie outcomes
    # possible. Without this, per-address tier draws make the measured
    # block average drift with query dropouts and ties dissolve.
    representative: tuple[BroadbandPlan, ...] | None = None
    for address in caf_here:
        state = truth.truth_for(isp_id, address.address_id)
        if state.serves and state.plans:
            representative = state.plans
            break
    if representative is not None:
        for address in caf_here:
            state = truth.truth_for(isp_id, address.address_id)
            if state.serves and state.plans and state.plans != representative:
                best = max(representative, key=lambda p: p.download_mbps)
                truth.set_truth(isp_id, address.address_id, ServiceTruth(
                    serves=True,
                    plans=representative,
                    existing_subscriber=state.existing_subscriber,
                    tier_label=best.tier_label,
                ))

    caf_average = _block_caf_average(truth, isp_id, caf_here)
    if caf_average <= 0:
        # No served CAF address with a visible plan: the analysis will
        # drop the block, but neighbors still need plausible truth.
        caf_average = 10.0

    # Split neighbors into incumbent modes.
    if competition.kind == "monopoly":
        modes = {"monopoly": neighbors}
    elif competition.kind == "overlap_full":
        modes = {"competition": neighbors}
    else:  # overlap_partial → Type C: periphery competitive, core not.
        half = max(1, len(neighbors) // 2)
        modes = {"competition": neighbors[:half], "monopoly": neighbors[half:]}

    for mode, mode_addresses in modes.items():
        if not mode_addresses:
            continue
        if mode == "monopoly":
            outcome = _draw_outcome(TYPE_A_SHARES, rng)
            speed = _rival_speed(caf_average, outcome, rng, _SAMPLE_MONOPOLY_WIN)
        else:
            outcome = _draw_outcome(TYPE_B_SHARES, rng)
            speed = _rival_speed(caf_average, outcome, rng, _SAMPLE_COMPETITION_WIN)
        if outcome == "tie" and representative is not None:
            # A genuine tie means the storefront shows the *same* plan
            # set to CAF and non-CAF neighbors — identical speeds AND
            # prices, so ties survive under the carriage-value metric
            # too (§4.3 observed "similar trends" with carriage).
            plans = representative
            best = max(plans, key=lambda p: p.download_mbps)
        else:
            plan = _incumbent_plan(isp_id, speed, rng)
            plans = (plan,)
            best = plan
        for address in mode_addresses:
            if rng.random() < 0.92:
                truth.set_truth(isp_id, address.address_id, ServiceTruth(
                    serves=True, plans=plans, tier_label=best.tier_label,
                ))
            # else: the incumbent does not serve this neighbor.
        if mode == "competition" and competition.cable_isp_id is not None:
            cable_profile = profile_for(competition.cable_isp_id)
            for address in mode_addresses:
                cable_rng = stable_rng(
                    config.seed, "cable", competition.cable_isp_id,
                    address.address_id,
                )
                if cable_rng.random() < cable_profile.base_serviceability:
                    label = cable_profile.sample_tier_label(cable_rng)
                    cable_plan = cable_profile.make_plan(label, cable_rng)
                    if cable_plan is not None:
                        truth.set_truth(
                            competition.cable_isp_id, address.address_id,
                            ServiceTruth(serves=True, plans=(cable_plan,),
                                         tier_label=cable_plan.tier_label),
                        )
    return competition, neighbors


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_world(config: ScenarioConfig | None = None) -> World:
    """Build the full synthetic universe for a scenario."""
    config = config or ScenarioConfig()
    address_factory = AddressGenerator(seed=config.seed)
    geographies: dict[str, StateGeography] = {}
    block_groups: dict[str, BlockGroup] = {}
    blocks: dict[str, CensusBlock] = {}
    hubb = HubbPortal(seed=config.seed)
    ledger = DisbursementLedger()
    caf_addresses: dict[str, StreetAddress] = {}
    caf_by_isp_state: dict[tuple[str, str], list[StreetAddress]] = {}
    records_by_isp: dict[str, list[DeploymentRecord]] = {}

    for state_abbr in config.states:
        footprint = dict(TABLE3_QUERIED_ADDRESSES.get(state_abbr, {}))
        if not footprint:
            raise ValueError(f"state {state_abbr} has no Table 3 footprint")
        geography, allocation = _build_state(config, state_abbr, footprint)
        geographies[state_abbr] = geography
        block_groups.update(geography.block_group_index())
        blocks.update(geography.block_index())
        tilt_rng = stable_rng(config.seed, "funds", state_abbr)
        for isp_id, assignment in allocation.items():
            addresses, records = _certify_state_isp(
                config, state_abbr, isp_id, assignment, address_factory
            )
            caf_by_isp_state[(isp_id, state_abbr)] = addresses
            for address in addresses:
                caf_addresses[address.address_id] = address
            records_by_isp.setdefault(isp_id, []).extend(records)
            ledger.add(Disbursement(
                isp_id=isp_id,
                state_abbreviation=state_abbr,
                amount_usd=len(addresses) * config.support_per_location_usd
                * float(tilt_rng.uniform(0.9, 1.2)),
            ))

    for isp_id, records in sorted(records_by_isp.items()):
        hubb.submit(CertificationBatch(
            isp_id=isp_id, filing_year=2021, records=tuple(records),
        ))

    # Pass 3: Q1/Q2 ground truth from profiles.
    truth = GroundTruth()
    for (isp_id, _state), addresses in caf_by_isp_state.items():
        profile = PROFILES[isp_id]
        for address in addresses:
            block_group = block_groups[address.block_group_geoid]
            truth.set_truth(
                isp_id, address.address_id,
                sample_service_truth(profile, address, block_group, config.seed),
            )

    # Pass 4: Q3 structure in the Q3 states.
    form477 = Form477()
    broadband_map = BroadbandMap()
    zillow_addresses: list[StreetAddress] = []
    block_competition: dict[str, BlockCompetition] = {}
    caf_map = hubb.caf_map
    caf_by_block: dict[tuple[str, str], list[StreetAddress]] = {}
    for (isp_id, state_abbr), addresses in caf_by_isp_state.items():
        if state_abbr not in config.q3_states:
            continue
        for address in addresses:
            caf_by_block.setdefault((isp_id, address.block_geoid), []).append(address)
    for (isp_id, block_geoid) in sorted(caf_by_block):
        block = blocks[block_geoid]
        competition, neighbors = _apply_q3_structure(
            config,
            block_geoid[:2],
            isp_id,
            block,
            caf_by_block[(isp_id, block_geoid)],
            truth,
            address_factory,
            form477,
            broadband_map,
        )
        block_competition[block_geoid] = competition
        zillow_addresses.extend(neighbors)

    websites = {
        isp_id: build_website(isp_id, truth, seed=config.seed)
        for isp_id in ("att", "centurylink", "frontier", "consolidated",
                       "xfinity", "spectrum")
    }

    return World(
        config=config,
        geographies=geographies,
        block_groups=block_groups,
        blocks=blocks,
        hubb=hubb,
        ledger=ledger,
        caf_addresses=caf_addresses,
        caf_by_isp_state=caf_by_isp_state,
        zillow=ZillowFeed(zillow_addresses),
        ground_truth=truth,
        form477=form477,
        broadband_map=broadband_map,
        block_competition=block_competition,
        websites=websites,
    )
