"""Scenario configuration for the world builder."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.fips import Q3_STATES, STUDY_STATES

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Size, scope and seed of one synthetic study universe.

    ``address_scale`` multiplies the Table 3 footprint: 1.0 would build
    a world whose *certified* population is ≈ 2.5× the paper's queried
    counts (the paper sampled ≥10%/≥30 per CBG from a larger certified
    pool). The default 0.02 yields a laptop-scale world of ~27k
    certified CAF addresses that preserves every distributional shape.
    """

    seed: int = 0
    address_scale: float = 0.02
    states: tuple[str, ...] = STUDY_STATES
    q3_states: tuple[str, ...] = Q3_STATES
    # Ratio of certified addresses to the Table 3 queried counts.
    certified_multiplier: float = 2.5
    # Census block-group sizing (addresses per CBG; Figure 1c median 64).
    cbg_size_median: float = 64.0
    cbg_size_sigma: float = 1.0
    max_cbg_size: int = 2000
    blocks_per_cbg: int = 8
    # Non-CAF (Zillow) neighbor density in Q3 blocks, as a fraction of
    # the block's CAF count.
    non_caf_fraction_range: tuple[float, float] = (0.4, 0.9)
    min_non_caf_per_block: int = 2
    # CAF II support per certified location (≈ $10B / 6.13M locations).
    support_per_location_usd: float = 1630.0

    def __post_init__(self) -> None:
        if self.address_scale <= 0:
            raise ValueError("address_scale must be positive")
        if self.certified_multiplier < 1.0:
            raise ValueError("certified_multiplier must be >= 1")
        if not self.states:
            raise ValueError("need at least one study state")
        unknown_q3 = set(self.q3_states) - set(self.states)
        if unknown_q3:
            raise ValueError(f"q3_states not in study states: {sorted(unknown_q3)}")
        low, high = self.non_caf_fraction_range
        if not 0 < low <= high:
            raise ValueError("bad non_caf_fraction_range")

    def certified_count(self, state: str, table3_count: int) -> int:
        """Certified addresses to generate for one (state, ISP) cell."""
        scaled = table3_count * self.certified_multiplier * self.address_scale
        return max(1, round(scaled))

    @classmethod
    def tiny(cls, seed: int = 0) -> "ScenarioConfig":
        """A minimal world for fast unit/integration tests."""
        return cls(
            seed=seed,
            address_scale=0.004,
            cbg_size_median=40.0,
            cbg_size_sigma=0.8,
            max_cbg_size=400,
        )
