"""World builder: one coherent synthetic study universe.

A :class:`~repro.synth.world.World` contains everything the paper's
data collection ran against, generated from a single seed:

* synthetic geographies for the study states;
* the CAF certifications the four ISPs filed with USAC (Table 3's
  state × ISP footprint);
* per-address ground truth drawn from the calibrated ISP profiles, with
  block-coherent Q3 structure in the seven Q3 states;
* the Zillow-like non-CAF address feed, Form 477, and National
  Broadband Map;
* the six BQT website simulators wired to the ground truth.

:mod:`repro.synth.calibration` holds every constant taken from the
paper, with the section/figure it came from.
"""

from repro.synth.calibration import (
    Q3OutcomeShares,
    TABLE3_QUERIED_ADDRESSES,
    TYPE_A_SHARES,
    TYPE_B_SHARES,
)
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world

__all__ = [
    "Q3OutcomeShares",
    "ScenarioConfig",
    "TABLE3_QUERIED_ADDRESSES",
    "TYPE_A_SHARES",
    "TYPE_B_SHARES",
    "World",
    "build_world",
]
