"""Plan churn: how stale does a one-shot audit get?

Appendix 8.1 ("Staleness"): the paper queried each address once, so its
snapshot ages as ISPs upgrade plant, change plans, or (rarely) retire
service. This module simulates that drift so the staleness bias of a
one-shot audit can be measured instead of argued about:

* each simulated year, a fraction of served addresses get a plan
  upgrade (speed roughly doubles, price creeps);
* a smaller fraction of unserved addresses become served (new
  deployment);
* a still-smaller fraction of served addresses lose service
  (copper retirement without replacement).

``churned_world`` returns a *new* world sharing geography and
certifications but with evolved truth and fresh storefronts, so the
same audit can run on both and the drift be compared.

Churn comes in two granularities. The per-address rates model
individual subscribers' plans drifting; ``cell_rate`` additionally
gates each year's churn to a random subset of (ISP, CBG) *cells* —
ISPs upgrade plant by neighborhood, not by household, so real drift is
spatially correlated. Cell-gated churn is what makes longitudinal
re-audits (:mod:`repro.longitudinal`) an O(churn) problem: a wave in
which 10% of cells churned invalidates ~10% of the prior wave's
per-cell results instead of all of them.

The evolution is a proper Markov chain in the year index: for a fixed
seed, ``churned_world(w, years=k)`` is exactly the state reached by
continuing ``churned_world(w, years=k - 1)`` one more year, which is
what lets a panel diff consecutive waves cell by cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.bqt.websites import build_website
from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.isp.plans import BroadbandPlan
from repro.isp.profiles import profile_for
from repro.stats.distributions import stable_rng
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world

__all__ = ["ChurnModel", "WaveScenario", "churned_world"]


@dataclass(frozen=True)
class ChurnModel:
    """Annual plan-churn rates.

    ``cell_rate`` is the probability that one (ISP, CBG) cell churns at
    all in a given year; within a churning cell the per-address rates
    apply. The default 1.0 reproduces the original uncorrelated model
    (every cell eligible every year).
    """

    upgrade_rate: float = 0.10
    new_deployment_rate: float = 0.03
    retirement_rate: float = 0.01
    upgrade_speed_multiplier: float = 2.0
    upgrade_price_multiplier: float = 1.08
    cell_rate: float = 1.0

    def __post_init__(self) -> None:
        for name in ("upgrade_rate", "new_deployment_rate",
                     "retirement_rate", "cell_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability")
        if self.upgrade_speed_multiplier < 1.0:
            raise ValueError("upgrades cannot lower speeds")
        if self.upgrade_price_multiplier <= 0:
            raise ValueError("price multiplier must be positive")


def _upgraded_plan(plan: BroadbandPlan, model: ChurnModel) -> BroadbandPlan:
    speed = plan.download_mbps * model.upgrade_speed_multiplier
    return BroadbandPlan(
        name=plan.name,
        download_mbps=speed,
        upload_mbps=plan.upload_mbps * model.upgrade_speed_multiplier,
        monthly_price_usd=min(plan.monthly_price_usd
                              * model.upgrade_price_multiplier, 200.0),
        technology="fiber" if speed >= 1000 else plan.technology,
        is_speed_guaranteed=plan.is_speed_guaranteed,
    )


def _address_cbg(world: World, address_id: str) -> str:
    """The CBG an address churns with (its cell-gating key)."""
    address = world.caf_addresses.get(address_id)
    if address is None and address_id in world.zillow:
        address = world.zillow.lookup(address_id)
    return address.block_group_geoid if address is not None else ""


def _evolve_truth(
    world: World, model: ChurnModel, years: int, seed: int
) -> GroundTruth:
    evolved = GroundTruth()
    # (isp, cbg, year) → did that cell churn that year. One stable draw
    # per key, shared by every address in the cell — the spatial
    # correlation that keeps unchanged cells byte-stable across waves.
    cell_active: dict[tuple[str, str, int], bool] = {}

    def active(isp_id: str, cbg: str, year: int) -> bool:
        if model.cell_rate >= 1.0:
            return True
        key = (isp_id, cbg, year)
        if key not in cell_active:
            roll = stable_rng(seed, "churn-cell", isp_id, cbg, year).random()
            cell_active[key] = roll < model.cell_rate
        return cell_active[key]

    for (isp_id, address_id) in world.ground_truth.pairs():
        state = world.ground_truth.truth_for(isp_id, address_id)
        rng = stable_rng(seed, "churn", isp_id, address_id)
        cbg = _address_cbg(world, address_id)
        for _year in range(years):
            if not active(isp_id, cbg, _year):
                continue
            if state.serves:
                roll = rng.random()
                if roll < model.retirement_rate:
                    state = ServiceTruth(serves=False)
                elif roll < model.retirement_rate + model.upgrade_rate \
                        and state.plans:
                    plans = tuple(_upgraded_plan(p, model) for p in state.plans)
                    best = max(plans, key=lambda p: p.download_mbps)
                    state = ServiceTruth(
                        serves=True, plans=plans,
                        existing_subscriber=state.existing_subscriber,
                        tier_label=best.tier_label)
            else:
                if rng.random() < model.new_deployment_rate:
                    profile = profile_for(isp_id)
                    label = profile.sample_tier_label(rng)
                    plan = profile.make_plan(label, rng)
                    if plan is None:
                        state = ServiceTruth(serves=True, plans=(),
                                             existing_subscriber=True,
                                             tier_label=label)
                    else:
                        state = ServiceTruth(serves=True, plans=(plan,),
                                             tier_label=plan.tier_label)
        evolved.set_truth(isp_id, address_id, state)
    return evolved


def churned_world(
    world: World, years: int = 1, model: ChurnModel | None = None
) -> World:
    """Return a copy of ``world`` with ``years`` of plan churn applied.

    Geography, certifications, funding and the Q3 block classification
    are shared (they don't churn on these timescales); ground truth and
    the website simulators are replaced.
    """
    if years < 0:
        raise ValueError("years must be non-negative")
    model = model or ChurnModel()
    truth = _evolve_truth(world, model, years, world.config.seed)
    websites = {
        isp_id: build_website(isp_id, truth, seed=world.config.seed)
        for isp_id in world.websites
    }
    return replace(world, ground_truth=truth, websites=websites)


@dataclass(frozen=True)
class WaveScenario:
    """One panel wave's world, as a rebuildable recipe.

    The runtime's process and distributed backends rebuild worlds from
    the scenario they are handed (workers never receive the
    multi-megabyte world object over the pipe). An evolved wave world
    keeps its base :class:`~repro.synth.scenario.ScenarioConfig`, which
    alone cannot reproduce it — so this wrapper carries the full
    recipe: base scenario, churn model, and the horizon in years.
    :meth:`realize` replays it deterministically; the executor's
    per-process world cache calls it exactly like ``build_world``.
    """

    base: ScenarioConfig
    years: int = 0
    model: ChurnModel = ChurnModel()

    def __post_init__(self) -> None:
        if self.years < 0:
            raise ValueError("years must be non-negative")

    # Passthroughs so fingerprinting and shard planning code that reads
    # scenario.{seed,states,q3_states} accepts either scenario kind.
    @property
    def seed(self) -> int:
        return self.base.seed

    @property
    def states(self) -> tuple[str, ...]:
        return self.base.states

    @property
    def q3_states(self) -> tuple[str, ...]:
        return self.base.q3_states

    def realize(self) -> World:
        """Build the base world and evolve it to this wave's horizon."""
        world = build_world(self.base)
        if self.years == 0:
            return world
        return churned_world(world, years=self.years, model=self.model)
