"""The ISP registry.

The paper studies four CAF-funded ISPs (AT&T, CenturyLink, Frontier,
Consolidated Communications — Section 3.1) and additionally queries two
unsubsidized cable ISPs (Comcast Xfinity and Charter Spectrum) that BQT
supports, for the Q3 competition analysis. The national synthetic USAC
dataset also needs the long tail of small CAF recipients (819 ISPs in
the real data); those are generated on demand with ``small_isp``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "IspInfo",
    "ALL_ISPS",
    "CAF_STUDY_ISPS",
    "BQT_SUPPORTED_ISPS",
    "isp_by_id",
    "small_isp",
]


@dataclass(frozen=True)
class IspInfo:
    """Identity and static attributes of one ISP."""

    isp_id: str
    name: str
    is_caf_recipient: bool
    bqt_supported: bool
    primary_technology: str
    # Median seconds for one BQT query against this ISP's website; the
    # paper's Figure 12 shows wide per-ISP differences (AT&T slowest
    # because of bot detection).
    median_query_seconds: float
    query_time_sigma: float

    def __post_init__(self) -> None:
        if not self.isp_id:
            raise ValueError("isp_id must be non-empty")
        if self.median_query_seconds <= 0 or self.query_time_sigma < 0:
            raise ValueError("query time parameters must be positive")


ATT = IspInfo(
    isp_id="att",
    name="AT&T",
    is_caf_recipient=True,
    bqt_supported=True,
    primary_technology="dsl",
    median_query_seconds=95.0,
    query_time_sigma=0.75,
)
CENTURYLINK = IspInfo(
    isp_id="centurylink",
    name="CenturyLink",
    is_caf_recipient=True,
    bqt_supported=True,
    primary_technology="dsl",
    median_query_seconds=45.0,
    query_time_sigma=0.45,
)
FRONTIER = IspInfo(
    isp_id="frontier",
    name="Frontier",
    is_caf_recipient=True,
    bqt_supported=True,
    primary_technology="dsl",
    median_query_seconds=55.0,
    query_time_sigma=0.5,
)
CONSOLIDATED = IspInfo(
    isp_id="consolidated",
    name="Consolidated",
    is_caf_recipient=True,
    bqt_supported=True,
    primary_technology="dsl",
    median_query_seconds=40.0,
    query_time_sigma=0.4,
)
XFINITY = IspInfo(
    isp_id="xfinity",
    name="Comcast Xfinity",
    is_caf_recipient=False,
    bqt_supported=True,
    primary_technology="cable",
    median_query_seconds=30.0,
    query_time_sigma=0.35,
)
SPECTRUM = IspInfo(
    isp_id="spectrum",
    name="Charter Spectrum",
    is_caf_recipient=False,
    bqt_supported=True,
    primary_technology="cable",
    median_query_seconds=32.0,
    query_time_sigma=0.35,
)
WINDSTREAM = IspInfo(
    isp_id="windstream",
    name="Windstream",
    is_caf_recipient=True,
    bqt_supported=False,
    primary_technology="dsl",
    median_query_seconds=50.0,
    query_time_sigma=0.5,
)

ALL_ISPS: tuple[IspInfo, ...] = (
    ATT, CENTURYLINK, FRONTIER, CONSOLIDATED, XFINITY, SPECTRUM, WINDSTREAM,
)

# The four CAF-funded ISPs whose certifications the paper audits.
CAF_STUDY_ISPS: tuple[IspInfo, ...] = (ATT, CENTURYLINK, FRONTIER, CONSOLIDATED)

# The six ISPs BQT can query (Section 4.3's exclusivity filter).
BQT_SUPPORTED_ISPS: tuple[IspInfo, ...] = (
    ATT, CENTURYLINK, FRONTIER, CONSOLIDATED, XFINITY, SPECTRUM,
)

_BY_ID = {isp.isp_id: isp for isp in ALL_ISPS}


def isp_by_id(isp_id: str) -> IspInfo:
    """Look up a registered ISP; synthesizes small CAF recipients with
    ids like ``smallisp-017`` so national-dataset codepaths work."""
    if isp_id in _BY_ID:
        return _BY_ID[isp_id]
    if isp_id.startswith("smallisp-"):
        return small_isp(int(isp_id.split("-", 1)[1]))
    raise KeyError(f"unknown ISP id {isp_id!r}")


def small_isp(index: int) -> IspInfo:
    """Return the synthetic small CAF recipient number ``index``."""
    if index < 0:
        raise ValueError("index must be non-negative")
    return IspInfo(
        isp_id=f"smallisp-{index:03d}",
        name=f"Rural Cooperative {index:03d}",
        is_caf_recipient=True,
        bqt_supported=False,
        primary_technology="fixed_wireless" if index % 3 == 0 else "dsl",
        median_query_seconds=40.0,
        query_time_sigma=0.4,
    )
