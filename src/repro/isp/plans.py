"""Broadband plans and the paper's speed-tier taxonomy.

Table 1 of the paper buckets advertised maximum download speeds into a
mix of exact values (0.768, 1, 3, 5, 10 …), coarse bands ("11-99",
"100-999", "1000+"), and *named* plans without speed guarantees ("AT&T
Internet Air", "Frontier Internet", "Unknown Plan"). This module owns
that taxonomy plus the plan record and the carriage-value metric
(advertised Mbps per dollar per month, [36, 40] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BroadbandPlan",
    "SPEED_TIER_LABELS",
    "UNSERVED_LABEL",
    "NO_GUARANTEE_LABELS",
    "tier_label_for_speed",
    "carriage_value",
]

# Bucket labels in the order Table 1 lists them.
UNSERVED_LABEL = "0"
NO_GUARANTEE_LABELS = ("AT&T Internet Air", "Frontier Internet", "Unknown Plan")
SPEED_TIER_LABELS: tuple[str, ...] = (
    UNSERVED_LABEL,
    *NO_GUARANTEE_LABELS,
    "0.5", "0.768", "1", "1.5", "3", "5", "6", "7", "10",
    "11-99", "100-999", "1000+",
)


@dataclass(frozen=True)
class BroadbandPlan:
    """One advertised broadband plan.

    ``is_speed_guaranteed`` is False for best-effort offerings (AT&T
    "Internet Air", "Frontier Internet") where the ISP explicitly does
    not commit to a minimum speed; the paper counts such plans as
    non-compliant with CAF's 10 Mbps floor regardless of the nominal
    ``download_mbps`` marketing number.
    """

    name: str
    download_mbps: float
    upload_mbps: float
    monthly_price_usd: float
    technology: str = "dsl"
    is_speed_guaranteed: bool = True

    def __post_init__(self) -> None:
        if self.download_mbps < 0 or self.upload_mbps < 0:
            raise ValueError("speeds must be non-negative")
        if self.monthly_price_usd <= 0:
            raise ValueError("price must be positive")

    @property
    def carriage_value(self) -> float:
        """Advertised download Mbps per dollar per month."""
        return carriage_value(self.download_mbps, self.monthly_price_usd)

    @property
    def tier_label(self) -> str:
        """Table 1 bucket for this plan."""
        if not self.is_speed_guaranteed:
            if self.name in NO_GUARANTEE_LABELS:
                return self.name
            return "Unknown Plan"
        return tier_label_for_speed(self.download_mbps)


def tier_label_for_speed(download_mbps: float) -> str:
    """Bucket a guaranteed download speed the way Table 1 does.

    Exact sub-10 values keep their own label; 10 is its own bucket (it
    is the compliance threshold); faster speeds fall into the coarse
    bands. Unrecognized sub-10 values are floored to the nearest listed
    label below them so synthetic variation cannot invent new buckets.
    """
    if download_mbps < 0:
        raise ValueError(f"negative speed {download_mbps}")
    if download_mbps == 0:
        return UNSERVED_LABEL
    if download_mbps >= 1000:
        return "1000+"
    if download_mbps >= 100:
        return "100-999"
    if download_mbps > 10:
        return "11-99"
    exact = {0.5: "0.5", 0.768: "0.768", 1.0: "1", 1.5: "1.5",
             3.0: "3", 5.0: "5", 6.0: "6", 7.0: "7", 10.0: "10"}
    if download_mbps in exact:
        return exact[download_mbps]
    # Floor to the nearest exact label below the value.
    floors = sorted(exact)
    best = floors[0]
    for value in floors:
        if value <= download_mbps:
            best = value
    return exact[best]


def carriage_value(download_mbps: float, monthly_price_usd: float) -> float:
    """Mbps of advertised download per dollar per month.

    The FCC's lenient rate benchmark implies a carriage value of only
    ~0.1 for 10 Mbps plans (10 Mbps / $89), versus medians of 15 in
    competitive urban markets (Section 4.2).
    """
    if monthly_price_usd <= 0:
        raise ValueError("price must be positive")
    if download_mbps < 0:
        raise ValueError("download speed must be non-negative")
    return download_mbps / monthly_price_usd
