"""ISP models: plans, identities, and ground-truth serving behaviour.

The reproduction needs two distinct views of an ISP:

* the *public* view — the identity and plan catalog a consumer (and
  BQT) can observe on the ISP's website (:mod:`repro.isp.registry`,
  :mod:`repro.isp.plans`);
* the *ground truth* — which addresses the ISP actually serves and at
  what maximum tier (:mod:`repro.isp.profiles`,
  :mod:`repro.isp.deployment`). The paper can only estimate this; the
  synthetic world generates it from profiles calibrated to the paper's
  estimates, which lets the test suite verify the measurement pipeline
  recovers the truth it was pointed at.
"""

from repro.isp.plans import (
    BroadbandPlan,
    SPEED_TIER_LABELS,
    carriage_value,
    tier_label_for_speed,
)
from repro.isp.registry import (
    ALL_ISPS,
    BQT_SUPPORTED_ISPS,
    CAF_STUDY_ISPS,
    IspInfo,
    isp_by_id,
)
from repro.isp.profiles import IspProfile, PROFILES, profile_for
from repro.isp.deployment import GroundTruth, ServiceTruth, build_ground_truth

__all__ = [
    "ALL_ISPS",
    "BQT_SUPPORTED_ISPS",
    "BroadbandPlan",
    "CAF_STUDY_ISPS",
    "GroundTruth",
    "IspInfo",
    "IspProfile",
    "PROFILES",
    "SPEED_TIER_LABELS",
    "ServiceTruth",
    "build_ground_truth",
    "carriage_value",
    "isp_by_id",
    "profile_for",
    "tier_label_for_speed",
]
