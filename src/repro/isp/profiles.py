"""Ground-truth ISP behaviour profiles.

A profile answers, for one ISP: *does it actually serve a given
certified address, and what plans does it advertise there?* The paper
can only estimate these quantities; here they are generative parameters
calibrated to the paper's estimates so the full pipeline (sampling →
BQT querying → weighted metrics) can be verified end-to-end against a
known truth.

Calibration sources:

* Serviceability: Section 4.1 — AT&T 31.53%, Frontier 70.71%,
  CenturyLink 90.42%, Consolidated 83.95%; AT&T's rate rises strongly
  with population density (Figure 3) except in Mississippi; per-state
  anomalies: CenturyLink ~0% in New Jersey, Frontier far below trend in
  Florida.
* Advertised plan mix conditional on being served: Table 1's advertised
  columns with the "0 Mbps" row removed and renormalized.
* Prices: Section 4.2 — 10 Mbps plans run $30–55/month, always below
  the $89 benchmark; higher tiers price sub-linearly in speed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.isp.plans import BroadbandPlan
from repro.isp.registry import IspInfo, isp_by_id

__all__ = ["IspProfile", "PROFILES", "profile_for"]


# Representative guaranteed speeds inside each coarse Table 1 band.
_BAND_SPEEDS: Mapping[str, tuple[tuple[float, float], ...]] = {
    "11-99": ((12.0, 0.22), (18.0, 0.2), (25.0, 0.22), (40.0, 0.14),
              (50.0, 0.12), (75.0, 0.1)),
    "100-999": ((100.0, 0.45), (200.0, 0.25), (300.0, 0.2), (500.0, 0.1)),
    "1000+": ((1000.0, 0.7), (2000.0, 0.2), (5000.0, 0.1)),
}

# Nominal marketing speeds for plans with no guaranteed minimum.
_NO_GUARANTEE_NOMINAL_MBPS = {
    "AT&T Internet Air": 75.0,
    "Frontier Internet": 25.0,
}

_EXACT_LABEL_SPEEDS = {
    "0.5": 0.5, "0.768": 0.768, "1": 1.0, "1.5": 1.5,
    "3": 3.0, "5": 5.0, "6": 6.0, "7": 7.0, "10": 10.0,
}


@dataclass(frozen=True)
class IspProfile:
    """Generative parameters for one ISP's ground-truth behaviour."""

    isp_id: str
    # Serviceability: probability an ISP actually serves a certified
    # address. Either flat (density_weight=0) or a logistic blend in
    # log10(population density).
    base_serviceability: float
    density_weight: float = 0.0
    density_midpoint_log10: float = 2.2
    density_scale_log10: float = 0.55
    serviceability_floor: float = 0.05
    serviceability_ceiling: float = 0.97
    # States where this ISP's serviceability ignores density (the paper
    # found no density correlation for AT&T in Mississippi).
    density_flat_states: frozenset[str] = frozenset()
    # Hard per-state overrides (CenturyLink New Jersey was 0%).
    state_overrides: Mapping[str, float] = field(default_factory=dict)
    # Advertised max-speed tier mix conditional on served (Table 1
    # advertised column, "0" row removed; weights need not sum to 1).
    served_tier_mix: Mapping[str, float] = field(default_factory=dict)
    # Price model: price = base + slope * log2(max(speed, 1) / 10).
    price_base_usd: float = 45.0
    price_slope_usd: float = 9.0
    price_noise_usd: float = 4.0
    upload_ratio: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_serviceability <= 1.0:
            raise ValueError("base_serviceability must be a probability")
        if not self.served_tier_mix:
            raise ValueError(f"profile {self.isp_id} has an empty tier mix")
        if any(weight < 0 for weight in self.served_tier_mix.values()):
            raise ValueError("tier-mix weights must be non-negative")
        object.__setattr__(
            self, "state_overrides", MappingProxyType(dict(self.state_overrides))
        )
        object.__setattr__(
            self, "served_tier_mix", MappingProxyType(dict(self.served_tier_mix))
        )

    @property
    def info(self) -> IspInfo:
        """The registry entry for this ISP."""
        return isp_by_id(self.isp_id)

    # ------------------------------------------------------------------
    # Serviceability
    # ------------------------------------------------------------------
    def serviceability_probability(
        self, state_abbreviation: str, population_density: float
    ) -> float:
        """Probability this ISP genuinely serves a certified address in
        a CBG of the given density."""
        if population_density < 0:
            raise ValueError("density must be non-negative")
        override = self.state_overrides.get(state_abbreviation)
        if override is not None:
            return override
        flat = state_abbreviation in self.density_flat_states
        if self.density_weight == 0.0 or flat:
            return self.base_serviceability
        log_density = math.log10(max(population_density, 0.1))
        logistic = 1.0 / (1.0 + math.exp(
            -(log_density - self.density_midpoint_log10) / self.density_scale_log10
        ))
        blended = ((1.0 - self.density_weight) * self.base_serviceability
                   + self.density_weight * logistic)
        return float(min(max(blended, self.serviceability_floor),
                         self.serviceability_ceiling))

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def sample_tier_label(self, rng: np.random.Generator) -> str:
        """Draw a Table 1 tier label from the served mix."""
        labels = list(self.served_tier_mix)
        weights = np.asarray([self.served_tier_mix[label] for label in labels])
        return labels[int(rng.choice(len(labels), p=weights / weights.sum()))]

    def speed_for_label(self, label: str, rng: np.random.Generator) -> float:
        """Concrete download speed for a tier label."""
        if label in _EXACT_LABEL_SPEEDS:
            return _EXACT_LABEL_SPEEDS[label]
        if label in _BAND_SPEEDS:
            speeds, weights = zip(*_BAND_SPEEDS[label])
            probabilities = np.asarray(weights) / sum(weights)
            return float(speeds[int(rng.choice(len(speeds), p=probabilities))])
        if label in _NO_GUARANTEE_NOMINAL_MBPS:
            return _NO_GUARANTEE_NOMINAL_MBPS[label]
        if label == "Unknown Plan":
            return 0.0
        raise ValueError(f"unknown tier label {label!r}")

    def price_for_speed(self, download_mbps: float, rng: np.random.Generator) -> float:
        """Monthly price for a plan at ``download_mbps``."""
        if download_mbps < 0:
            raise ValueError("speed must be non-negative")
        base = (self.price_base_usd
                + self.price_slope_usd * math.log2(max(download_mbps, 1.0) / 10.0))
        noisy = base + float(rng.normal(0.0, self.price_noise_usd))
        return float(min(max(noisy, 20.0), 120.0))

    def make_plan(self, label: str, rng: np.random.Generator) -> BroadbandPlan | None:
        """Build the top advertised plan for a tier label.

        Returns ``None`` for "Unknown Plan" — the address is served (an
        active subscriber exists) but the website displays no tiers, so
        there is no plan object to advertise.
        """
        if label == "Unknown Plan":
            return None
        speed = self.speed_for_label(label, rng)
        guaranteed = label not in _NO_GUARANTEE_NOMINAL_MBPS
        name = label if not guaranteed else f"{self.info.name} {speed:g} Mbps"
        technology = self.info.primary_technology
        if guaranteed and speed >= 1000:
            technology = "fiber"
        return BroadbandPlan(
            name=name,
            download_mbps=speed,
            upload_mbps=max(speed * self.upload_ratio, 0.128),
            monthly_price_usd=self.price_for_speed(speed, rng),
            technology=technology,
            is_speed_guaranteed=guaranteed,
        )

    def lower_tier_plans(
        self, top: BroadbandPlan, rng: np.random.Generator
    ) -> list[BroadbandPlan]:
        """Cheaper plans below the top tier, as real storefronts show."""
        if not top.is_speed_guaranteed or top.download_mbps <= 10.0:
            return []
        candidates = [speed for speed in (10.0, 25.0, 50.0, 100.0, 500.0)
                      if speed < top.download_mbps]
        count = min(len(candidates), int(rng.integers(0, 3)))
        chosen = sorted(candidates[-count:]) if count else []
        return [
            BroadbandPlan(
                name=f"{self.info.name} {speed:g} Mbps",
                download_mbps=speed,
                upload_mbps=max(speed * self.upload_ratio, 0.128),
                monthly_price_usd=self.price_for_speed(speed, rng),
                technology=self.info.primary_technology,
            )
            for speed in chosen
        ]


def _att_profile() -> IspProfile:
    # Table 1 advertised column minus the unserved row. Aggregate
    # serviceability ≈ 32%; density logistic concentrates service near
    # cities (Figure 3) with Mississippi flat (Section 4.1).
    return IspProfile(
        isp_id="att",
        base_serviceability=0.315,
        density_weight=0.85,
        density_midpoint_log10=3.15,
        density_scale_log10=0.6,
        serviceability_floor=0.10,
        density_flat_states=frozenset({"MS"}),
        served_tier_mix={
            "AT&T Internet Air": 5.052,
            "0.768": 1.153,
            "1": 0.976,
            "3": 1.786,
            "5": 2.479,
            "10": 3.135,
            "11-99": 9.628,
            "100-999": 0.359,
            "1000+": 7.767,
        },
        price_base_usd=55.0,
        price_slope_usd=7.0,
    )


def _centurylink_profile() -> IspProfile:
    return IspProfile(
        isp_id="centurylink",
        base_serviceability=0.904,
        density_weight=0.1,
        state_overrides={"NJ": 0.0},
        served_tier_mix={
            "0.5": 0.298,
            "1.5": 1.996,
            "3": 15.036,
            "6": 5.664,
            "10": 32.520,
            "11-99": 34.145,
            "100-999": 1.780,
        },
        price_base_usd=50.0,
        price_slope_usd=8.0,
    )


def _frontier_profile() -> IspProfile:
    return IspProfile(
        isp_id="frontier",
        base_serviceability=0.71,
        density_weight=0.15,
        state_overrides={"FL": 0.2},
        served_tier_mix={
            "Frontier Internet": 53.255,
            "Unknown Plan": 12.138,
            "100-999": 0.098,
            "1000+": 3.895,
        },
        price_base_usd=50.0,
        price_slope_usd=8.0,
    )


def _consolidated_profile() -> IspProfile:
    return IspProfile(
        isp_id="consolidated",
        base_serviceability=0.84,
        density_weight=0.1,
        served_tier_mix={
            "3": 0.027,
            "7": 0.177,
            "10": 12.477,
            "11-99": 42.323,
            "100-999": 1.159,
            "1000+": 29.295,
        },
        price_base_usd=45.0,
        price_slope_usd=8.0,
    )


def _xfinity_profile() -> IspProfile:
    # Cable competitor: high availability where present, fast plans.
    return IspProfile(
        isp_id="xfinity",
        base_serviceability=0.96,
        served_tier_mix={"11-99": 5.0, "100-999": 55.0, "1000+": 40.0},
        price_base_usd=60.0,
        price_slope_usd=6.0,
        upload_ratio=0.05,
    )


def _spectrum_profile() -> IspProfile:
    return IspProfile(
        isp_id="spectrum",
        base_serviceability=0.96,
        served_tier_mix={"11-99": 4.0, "100-999": 66.0, "1000+": 30.0},
        price_base_usd=55.0,
        price_slope_usd=6.0,
        upload_ratio=0.05,
    )


PROFILES: Mapping[str, IspProfile] = MappingProxyType({
    profile.isp_id: profile
    for profile in (
        _att_profile(),
        _centurylink_profile(),
        _frontier_profile(),
        _consolidated_profile(),
        _xfinity_profile(),
        _spectrum_profile(),
    )
})


def profile_for(isp_id: str) -> IspProfile:
    """Return the calibrated profile for a BQT-supported ISP."""
    try:
        return PROFILES[isp_id]
    except KeyError:
        raise KeyError(
            f"no behaviour profile for {isp_id!r}; profiles exist for "
            f"{sorted(PROFILES)}"
        ) from None
