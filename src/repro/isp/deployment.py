"""Ground-truth service assignment.

:class:`GroundTruth` stores, for each (ISP, address) pair, whether the
ISP actually serves the address and which plans its website would show
there. The world builder populates it in two passes:

1. :func:`build_ground_truth` covers Q1/Q2 — each CAF-certified address
   is resolved against the certifying ISP's profile (serviceability by
   density, then a tier draw conditional on being served).
2. The Q3 world builder (:mod:`repro.synth.world`) overwrites truths in
   the Q3 study blocks with block-coherent speeds so within-block
   comparisons have the paper's outcome structure.

The BQT website simulators consult this object — never the profiles
directly — so the querying layer and the generative layer stay
decoupled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.addresses.models import StreetAddress
from repro.geo.entities import BlockGroup
from repro.isp.plans import BroadbandPlan, UNSERVED_LABEL
from repro.isp.profiles import IspProfile
from repro.stats.distributions import stable_rng

__all__ = ["ServiceTruth", "GroundTruth", "build_ground_truth"]

UNSERVED_TRUTH_LABEL = UNSERVED_LABEL


@dataclass(frozen=True)
class ServiceTruth:
    """The true service state of one (ISP, address) pair."""

    serves: bool
    plans: tuple[BroadbandPlan, ...] = ()
    existing_subscriber: bool = False
    tier_label: str = UNSERVED_TRUTH_LABEL

    def __post_init__(self) -> None:
        if not self.serves and self.plans:
            raise ValueError("an unserved address cannot have plans")
        if not self.serves and self.existing_subscriber:
            raise ValueError("an unserved address cannot have a subscriber")

    @property
    def max_download_mbps(self) -> float:
        """Highest guaranteed advertised download speed (0 if none)."""
        guaranteed = [p.download_mbps for p in self.plans if p.is_speed_guaranteed]
        return max(guaranteed, default=0.0)

    @property
    def best_plan(self) -> BroadbandPlan | None:
        """The advertised plan with the highest download speed."""
        if not self.plans:
            return None
        return max(self.plans, key=lambda plan: plan.download_mbps)


UNSERVED = ServiceTruth(serves=False)


class GroundTruth:
    """Mutable map of (isp_id, address_id) → :class:`ServiceTruth`."""

    def __init__(self) -> None:
        self._truths: dict[tuple[str, str], ServiceTruth] = {}

    def __len__(self) -> int:
        return len(self._truths)

    def set_truth(self, isp_id: str, address_id: str, truth: ServiceTruth) -> None:
        """Record the truth for one pair (overwrites silently — the Q3
        builder intentionally refines Q1 assignments)."""
        self._truths[(isp_id, address_id)] = truth

    def truth_for(self, isp_id: str, address_id: str) -> ServiceTruth:
        """Return the recorded truth, or the unserved default."""
        return self._truths.get((isp_id, address_id), UNSERVED)

    def serves(self, isp_id: str, address_id: str) -> bool:
        """True when the ISP genuinely serves the address."""
        return self.truth_for(isp_id, address_id).serves

    def pairs(self) -> Iterable[tuple[str, str]]:
        """All recorded (isp_id, address_id) pairs."""
        return self._truths.keys()


def sample_service_truth(
    profile: IspProfile,
    address: StreetAddress,
    block_group: BlockGroup,
    seed: int,
) -> ServiceTruth:
    """Draw one address's truth from an ISP profile.

    Deterministic per (seed, isp, address): re-running the world builder
    yields the same truth regardless of call order.
    """
    rng = stable_rng(seed, "truth", profile.isp_id, address.address_id)
    probability = profile.serviceability_probability(
        address.state_abbreviation, block_group.population_density
    )
    if rng.random() >= probability:
        return UNSERVED
    label = profile.sample_tier_label(rng)
    top_plan = profile.make_plan(label, rng)
    if top_plan is None:
        # "Unknown Plan": an active subscriber exists but the site
        # displays no tiers (Frontier, Section 4.2).
        return ServiceTruth(
            serves=True, plans=(), existing_subscriber=True, tier_label=label
        )
    plans = tuple(profile.lower_tier_plans(top_plan, rng)) + (top_plan,)
    existing = bool(rng.random() < 0.08)
    return ServiceTruth(
        serves=True,
        plans=plans,
        existing_subscriber=existing,
        tier_label=top_plan.tier_label,
    )


def build_ground_truth(
    certified: Mapping[str, list[StreetAddress]],
    block_groups: Mapping[str, BlockGroup],
    profiles: Mapping[str, IspProfile],
    seed: int = 0,
) -> GroundTruth:
    """Populate a :class:`GroundTruth` for certified CAF addresses.

    ``certified`` maps isp_id → the addresses that ISP certified to
    USAC; ``block_groups`` indexes CBG GEOID → entity for density
    lookups.
    """
    truth = GroundTruth()
    for isp_id, addresses in certified.items():
        profile = profiles[isp_id]
        for address in addresses:
            block_group = block_groups.get(address.block_group_geoid)
            if block_group is None:
                raise KeyError(
                    f"address {address.address_id} references unknown CBG "
                    f"{address.block_group_geoid}"
                )
            truth.set_truth(
                isp_id,
                address.address_id,
                sample_service_truth(profile, address, block_group, seed),
            )
    return truth
