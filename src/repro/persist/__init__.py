"""Persistence of study artifacts.

A completed audit is a set of datasets a downstream user (a regulator,
a journalist, another researcher) should be able to consume without
running the pipeline. :class:`~repro.persist.store.StudyStore` writes
them as CSV plus a JSON manifest with provenance (scenario parameters,
seed, headline numbers) and content checksums, and loads them back.
"""

from repro.persist.store import StudyManifest, StudyStore

__all__ = ["StudyManifest", "StudyStore"]
