"""The study store: datasets + manifest on disk."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.pipeline import AuditReport
from repro.runtime.atomicio import atomic_write_text
from repro.tabular import Table, read_csv, write_csv

__all__ = ["StudyManifest", "StudyStore"]

MANIFEST_NAME = "manifest.json"

# Dataset name → how to pull its table from a report.
_DATASETS = {
    "audit": lambda report: report.audit.table,
    "query_log": lambda report: report.collection.log.to_table(),
    "q3_query_log": lambda report: report.q3_collection.log.to_table(),
    "q3_blocks": lambda report: report.monopoly.to_table(),
    "caf_map": lambda report: report.world.caf_map.to_table(),
    "table1": lambda report: report.compliance.table1(),
}


@dataclass(frozen=True)
class StudyManifest:
    """Provenance and integrity record for a persisted study."""

    seed: int
    address_scale: float
    states: tuple[str, ...]
    headline: dict[str, float]
    checksums: dict[str, str]

    def to_json(self) -> str:
        """Serialize (stable key order)."""
        return json.dumps({
            "seed": self.seed,
            "address_scale": self.address_scale,
            "states": list(self.states),
            "headline": self.headline,
            "checksums": self.checksums,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StudyManifest":
        """Deserialize."""
        data = json.loads(text)
        return cls(
            seed=int(data["seed"]),
            address_scale=float(data["address_scale"]),
            states=tuple(data["states"]),
            headline={k: float(v) for k, v in data["headline"].items()},
            checksums=dict(data["checksums"]),
        )


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


class StudyStore:
    """Reads and writes one study directory."""

    def __init__(self, directory: str | Path):
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        """The store's root directory."""
        return self._directory

    def dataset_path(self, name: str) -> Path:
        """Path of one dataset CSV."""
        if name not in _DATASETS:
            raise KeyError(
                f"unknown dataset {name!r}; datasets: {sorted(_DATASETS)}")
        return self._directory / f"{name}.csv"

    # ------------------------------------------------------------------
    def save(self, report: AuditReport) -> StudyManifest:
        """Write every dataset and the manifest; returns the manifest."""
        self._directory.mkdir(parents=True, exist_ok=True)
        checksums = {}
        for name, extract in _DATASETS.items():
            path = self.dataset_path(name)
            write_csv(extract(report), path)
            checksums[name] = _sha256(path)
        config = report.world.config
        manifest = StudyManifest(
            seed=config.seed,
            address_scale=config.address_scale,
            states=tuple(config.states),
            headline=report.headline(),
            checksums=checksums,
        )
        atomic_write_text(self._directory / MANIFEST_NAME,
                          manifest.to_json())
        return manifest

    def load_manifest(self) -> StudyManifest:
        """Read the manifest."""
        path = self._directory / MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(f"no manifest at {path}")
        return StudyManifest.from_json(path.read_text(encoding="utf-8"))

    def verify(self) -> list[str]:
        """Return dataset names whose checksum no longer matches
        (empty list means the store is intact)."""
        manifest = self.load_manifest()
        corrupted = []
        for name, expected in manifest.checksums.items():
            path = self.dataset_path(name)
            if not path.exists() or _sha256(path) != expected:
                corrupted.append(name)
        return sorted(corrupted)

    def load(self, name: str) -> Table:
        """Load one dataset back as a table."""
        path = self.dataset_path(name)
        if not path.exists():
            raise FileNotFoundError(f"dataset {name!r} not saved at {path}")
        return read_csv(path)

    def dataset_names(self) -> list[str]:
        """All dataset names the store format defines."""
        return sorted(_DATASETS)

    def checkpoints(self, fingerprint: str):
        """Open this store's shard-checkpoint area (``shards/``).

        Returns a :class:`~repro.runtime.checkpoint.CheckpointStore`
        bound to the given campaign fingerprint; the runtime uses it to
        persist completed shards next to the study datasets so an
        interrupted export resumes instead of recomputing.
        """
        from repro.runtime.checkpoint import CheckpointStore

        return CheckpointStore(self._directory / "shards", fingerprint)
