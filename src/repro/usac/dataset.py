"""The indexed CAF Map dataset container."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.tabular import Table
from repro.usac.schema import DeploymentRecord

__all__ = ["CafMapDataset"]

_TABLE_FIELDS = (
    "address_id", "isp_id", "state_abbreviation", "block_geoid",
    "longitude", "latitude", "households", "technology",
    "certified_download_mbps", "certified_upload_mbps",
    "certified_latency_ms", "funding_program",
)


class CafMapDataset:
    """All certified CAF deployment locations, with lookup indexes."""

    def __init__(self, records: Iterable[DeploymentRecord] = ()):
        self._records: list[DeploymentRecord] = []
        self._by_address: dict[str, DeploymentRecord] = {}
        self._by_isp: dict[str, list[DeploymentRecord]] = {}
        self._by_state: dict[str, list[DeploymentRecord]] = {}
        self._by_block: dict[str, list[DeploymentRecord]] = {}
        self._by_block_group: dict[str, list[DeploymentRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: DeploymentRecord) -> None:
        """Append one record (address ids must be unique)."""
        if record.address_id in self._by_address:
            raise ValueError(f"duplicate CAF address id {record.address_id!r}")
        self._records.append(record)
        self._by_address[record.address_id] = record
        self._by_isp.setdefault(record.isp_id, []).append(record)
        self._by_state.setdefault(record.state_abbreviation, []).append(record)
        self._by_block.setdefault(record.block_geoid, []).append(record)
        self._by_block_group.setdefault(record.block_group_geoid, []).append(record)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DeploymentRecord]:
        return iter(self._records)

    def __contains__(self, address_id: str) -> bool:
        return address_id in self._by_address

    def record_for(self, address_id: str) -> DeploymentRecord:
        """Return the record certifying ``address_id``."""
        try:
            return self._by_address[address_id]
        except KeyError:
            raise KeyError(f"no CAF record for address {address_id!r}") from None

    def isps(self) -> list[str]:
        """Certifying ISP ids, sorted."""
        return sorted(self._by_isp)

    def states(self) -> list[str]:
        """States with certified locations, sorted."""
        return sorted(self._by_state)

    def blocks(self) -> list[str]:
        """Census blocks with certified locations, sorted."""
        return sorted(self._by_block)

    def block_groups(self) -> list[str]:
        """Census block groups with certified locations, sorted."""
        return sorted(self._by_block_group)

    def for_isp(self, isp_id: str) -> list[DeploymentRecord]:
        """Records certified by one ISP."""
        return list(self._by_isp.get(isp_id, []))

    def for_state(self, state_abbreviation: str) -> list[DeploymentRecord]:
        """Records in one state."""
        return list(self._by_state.get(state_abbreviation, []))

    def for_isp_state(self, isp_id: str, state_abbreviation: str) -> list[DeploymentRecord]:
        """Records for an (ISP, state) pair."""
        return [r for r in self._by_isp.get(isp_id, [])
                if r.state_abbreviation == state_abbreviation]

    def in_block(self, block_geoid: str) -> list[DeploymentRecord]:
        """Records in one census block."""
        return list(self._by_block.get(block_geoid, []))

    def in_block_group(self, block_group_geoid: str) -> list[DeploymentRecord]:
        """Records in one census block group."""
        return list(self._by_block_group.get(block_group_geoid, []))

    def addresses_per_block(self) -> dict[str, int]:
        """CAF address count per census block (Figure 1c)."""
        return {block: len(records) for block, records in self._by_block.items()}

    def addresses_per_block_group(self) -> dict[str, int]:
        """CAF address count per census block group (Figure 1c)."""
        return {bg: len(records) for bg, records in self._by_block_group.items()}

    def count_by_state(self) -> dict[str, int]:
        """Certified locations per state (Figure 1a)."""
        return {state: len(records) for state, records in self._by_state.items()}

    def count_by_isp(self) -> dict[str, int]:
        """Certified locations per ISP (Figure 1b)."""
        return {isp: len(records) for isp, records in self._by_isp.items()}

    def to_table(self) -> Table:
        """Flatten to a :class:`~repro.tabular.Table`."""
        return Table.from_records(self._records, _TABLE_FIELDS)
