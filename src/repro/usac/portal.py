"""The USAC open-data portal, simulated.

The paper pulls the CAF Map from USAC's Socrata-style open-data portal
(opendata.usac.org). This module provides the equivalent read API over
a :class:`~repro.usac.dataset.CafMapDataset`: field filters, ordering,
and offset/limit pagination — the access pattern a downstream analyst
scripting against the portal actually uses (and the access pattern the
examples use, so the repository exercises its own "public" interface).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator

from repro.tabular import Table
from repro.usac.dataset import CafMapDataset
from repro.usac.schema import DeploymentRecord

__all__ = ["PortalQuery", "PortalPage", "OpenDataPortal"]

_FILTERABLE_FIELDS = (
    "isp_id", "state_abbreviation", "block_geoid", "technology",
    "funding_program",
)
_ORDERABLE_FIELDS = _FILTERABLE_FIELDS + (
    "address_id", "certified_download_mbps", "certified_latency_ms",
)

MAX_PAGE_SIZE = 10_000


@dataclass(frozen=True)
class PortalQuery:
    """A portal query: filters + ordering + pagination."""

    filters: dict[str, Any] = field(default_factory=dict)
    order_by: str = "address_id"
    descending: bool = False
    offset: int = 0
    limit: int = 1000

    def __post_init__(self) -> None:
        for name in self.filters:
            if name not in _FILTERABLE_FIELDS:
                raise ValueError(
                    f"cannot filter on {name!r}; filterable fields: "
                    f"{_FILTERABLE_FIELDS}")
        if self.order_by not in _ORDERABLE_FIELDS:
            raise ValueError(
                f"cannot order by {self.order_by!r}; orderable fields: "
                f"{_ORDERABLE_FIELDS}")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")
        if not 1 <= self.limit <= MAX_PAGE_SIZE:
            raise ValueError(f"limit must be in [1, {MAX_PAGE_SIZE}]")

    def where(self, **filters: Any) -> "PortalQuery":
        """Return a query with additional filters."""
        return replace(self, filters={**self.filters, **filters})

    def next_page(self) -> "PortalQuery":
        """The query for the following page."""
        return replace(self, offset=self.offset + self.limit)


@dataclass(frozen=True)
class PortalPage:
    """One page of results."""

    records: tuple[DeploymentRecord, ...]
    offset: int
    total_matching: int

    @property
    def has_more(self) -> bool:
        """Whether later pages exist."""
        return self.offset + len(self.records) < self.total_matching


class OpenDataPortal:
    """Read-only query API over the CAF Map."""

    def __init__(self, dataset: CafMapDataset):
        self._dataset = dataset

    def fetch(self, query: PortalQuery) -> PortalPage:
        """Execute one query page."""
        matching = [record for record in self._dataset
                    if self._matches(record, query.filters)]
        key: Callable[[DeploymentRecord], Any] = (
            lambda record: getattr(record, query.order_by))
        matching.sort(key=key, reverse=query.descending)
        window = matching[query.offset:query.offset + query.limit]
        return PortalPage(
            records=tuple(window),
            offset=query.offset,
            total_matching=len(matching),
        )

    def fetch_all(self, query: PortalQuery) -> Iterator[DeploymentRecord]:
        """Iterate every matching record, paginating internally."""
        page_query = query
        while True:
            page = self.fetch(page_query)
            yield from page.records
            if not page.has_more:
                return
            page_query = page_query.next_page()

    def count(self, **filters: Any) -> int:
        """Number of records matching the filters."""
        query = PortalQuery(filters=dict(filters), limit=1)
        return self.fetch(query).total_matching

    def to_table(self, query: PortalQuery) -> Table:
        """Materialize all matching records as a table."""
        records = list(self.fetch_all(query))
        if not records:
            return Table()
        return Table.from_records(records, (
            "address_id", "isp_id", "state_abbreviation", "block_geoid",
            "technology", "certified_download_mbps",
            "certified_upload_mbps", "certified_latency_ms",
        ))

    @staticmethod
    def _matches(record: DeploymentRecord, filters: dict[str, Any]) -> bool:
        return all(getattr(record, name) == value
                   for name, value in filters.items())
