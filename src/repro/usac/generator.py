"""National synthetic CAF Map generator.

Reproduces the public-dataset characterization of Section 2.3 / Figure
1 at a configurable scale. Calibration targets (real dataset → ours,
before scaling):

* 6.13M deployment locations, ~819 ISPs, ~$10B disbursed;
* top-4 ISPs (AT&T, CenturyLink, Frontier, Windstream) certify 62% of
  addresses and receive 37.5% of funds; CenturyLink is the single
  largest recipient ($1.84B); Consolidated ranks 5th by addresses;
* top states by addresses: Texas, Wisconsin, Minnesota; by funds:
  Texas, Minnesota, Arkansas; the top-20 states hold >73% of addresses;
* addresses per census block range 1 → ~5k; per block group min 1,
  median 64, max ~5.2k;
* 96.7% of CAF census blocks are rural;
* certified download speeds sit almost entirely at 10 Mbps (Figure 1f),
  with Consolidated certifying a visible 25/100/1000 Mbps tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.fips import ALL_STATES, StateInfo
from repro.stats.distributions import (
    allocate_counts,
    bounded_zipf_shares,
    lognormal_sizes,
    stable_rng,
)
from repro.usac.dataset import CafMapDataset
from repro.usac.disbursements import Disbursement, DisbursementLedger
from repro.usac.schema import DeploymentRecord

__all__ = ["NationalDatasetConfig", "NationalDataset", "generate_national_dataset"]

REAL_TOTAL_LOCATIONS = 6_130_000
REAL_TOTAL_FUNDS_USD = 10_000_000_000.0
REAL_NUM_ISPS = 819

# National address shares for the named ISPs (top-4 = 62%, paper §2.3;
# Consolidated 138k/6.13M ≈ 2.3%, ranked 5th).
_NAMED_ISP_ADDRESS_SHARES = {
    "att": 0.22,
    "centurylink": 0.16,
    "frontier": 0.13,
    "windstream": 0.11,
    "consolidated": 0.023,
}

# Fund shares (top-4 = 37.5%; CenturyLink the largest at ~18.4%).
_NAMED_ISP_FUND_SHARES = {
    "centurylink": 0.184,
    "att": 0.10,
    "frontier": 0.06,
    "windstream": 0.031,
    "consolidated": 0.0193,
}

# Address-share boosts for the paper's top states (TX, WI, MN lead);
# urbanized coastal states punch far below population (CAF targets
# rural, high-cost areas).
_STATE_ADDRESS_BOOSTS = {
    "TX": 3.2, "WI": 2.6, "MN": 2.5, "AR": 2.2, "MO": 1.6,
    "CA": 0.45, "NY": 0.5, "FL": 0.6, "NJ": 0.35, "MA": 0.4,
}
# Fund-per-address tilts so the fund ranking becomes TX, MN, AR.
_STATE_FUND_TILTS = {"MN": 1.25, "AR": 1.6, "TX": 1.05, "WI": 0.75}


@dataclass(frozen=True)
class NationalDatasetConfig:
    """Scale and shape knobs for the synthetic national CAF Map."""

    scale: float = 0.01
    seed: int = 0
    num_small_isps: int = 80
    cbg_size_median: float = 64.0
    cbg_size_sigma: float = 1.45
    max_cbg_size: int = 5200
    rural_block_fraction: float = 0.967

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        if self.num_small_isps < 1:
            raise ValueError("need at least one small ISP")
        if not 0 <= self.rural_block_fraction <= 1:
            raise ValueError("rural fraction must be a probability")

    @property
    def total_locations(self) -> int:
        """Scaled national location count."""
        return max(1, round(REAL_TOTAL_LOCATIONS * self.scale))

    @property
    def total_funds_usd(self) -> float:
        """Scaled national disbursement total."""
        return REAL_TOTAL_FUNDS_USD * self.scale


@dataclass(frozen=True)
class NationalDataset:
    """The generated CAF Map plus its funding ledger and metadata."""

    caf_map: CafMapDataset
    ledger: DisbursementLedger
    rural_blocks: frozenset[str] = field(repr=False)

    @property
    def rural_block_share(self) -> float:
        """Fraction of CAF census blocks that are rural."""
        blocks = self.caf_map.blocks()
        if not blocks:
            return 0.0
        return sum(1 for b in blocks if b in self.rural_blocks) / len(blocks)


def _state_address_shares() -> dict[str, float]:
    weights = {}
    for state in ALL_STATES:
        base = state.population_millions**0.62
        weights[state.abbreviation] = base * _STATE_ADDRESS_BOOSTS.get(
            state.abbreviation, 1.0
        )
    total = sum(weights.values())
    return {abbr: weight / total for abbr, weight in weights.items()}


def _isp_address_shares(config: NationalDatasetConfig) -> dict[str, float]:
    shares = dict(_NAMED_ISP_ADDRESS_SHARES)
    remainder = 1.0 - sum(shares.values())
    small = bounded_zipf_shares(config.num_small_isps, exponent=0.85) * remainder
    for index, share in enumerate(small):
        shares[f"smallisp-{index:03d}"] = float(share)
    return shares


def _isp_fund_shares(config: NationalDatasetConfig) -> dict[str, float]:
    shares = dict(_NAMED_ISP_FUND_SHARES)
    remainder = 1.0 - sum(shares.values())
    small = bounded_zipf_shares(config.num_small_isps, exponent=0.75) * remainder
    for index, share in enumerate(small):
        shares[f"smallisp-{index:03d}"] = float(share)
    return shares


def certified_speed_for(isp_id: str, rng: np.random.Generator) -> tuple[float, float]:
    """Certified (download, upload) speeds: the Figure 1f distribution.

    Nearly every ISP certifies exactly the 10/1 Mbps floor; Consolidated
    certifies a visible 25/100/1000 tail and Frontier a sliver of 100s.
    """
    if isp_id == "consolidated":
        roll = rng.random()
        if roll < 0.8602:
            return 10.0, 1.0
        if roll < 0.8602 + 0.1287:
            return 25.0, 3.0
        if roll < 0.8602 + 0.1287 + 0.0077:
            return 100.0, 10.0
        return 1000.0, 100.0
    if isp_id == "frontier" and rng.random() < 0.0002:
        return 100.0, 10.0
    if isp_id.startswith("smallisp-") and rng.random() < 0.03:
        return 25.0, 3.0
    return 10.0, 1.0


def _synthetic_block_geoids(
    state: StateInfo, cbg_serial: int, num_blocks: int
) -> list[str]:
    """Fabricate nested GEOIDs for one synthetic CBG."""
    county = (cbg_serial // 396) % 999 + 1
    tract = (cbg_serial // 9) % 9999 + 1
    bg_digit = cbg_serial % 9 + 1
    prefix = f"{state.fips}{county:03d}{tract:06d}{bg_digit}"
    return [f"{prefix}{block:03d}" for block in range(1, num_blocks + 1)]


def generate_national_dataset(
    config: NationalDatasetConfig | None = None,
) -> NationalDataset:
    """Generate the scaled national CAF Map, ledger, and rural flags."""
    config = config or NationalDatasetConfig()
    rng = stable_rng(config.seed, "usac-national")
    state_shares = _state_address_shares()
    isp_shares = _isp_address_shares(config)
    fund_shares = _isp_fund_shares(config)

    state_abbrs = list(state_shares)
    state_counts = allocate_counts(
        config.total_locations, [state_shares[s] for s in state_abbrs]
    )

    isp_ids = list(isp_shares)
    isp_probabilities = np.asarray([isp_shares[isp] for isp in isp_ids])
    isp_probabilities = isp_probabilities / isp_probabilities.sum()

    caf_map = CafMapDataset()
    rural_blocks: set[str] = set()
    state_by_abbr = {state.abbreviation: state for state in ALL_STATES}
    isp_state_addresses: dict[tuple[str, str], int] = {}

    serial = 0
    for abbr, state_total in zip(state_abbrs, state_counts):
        if state_total == 0:
            continue
        state = state_by_abbr[abbr]
        state_rng = stable_rng(config.seed, "usac-national", abbr)
        remaining = int(state_total)
        while remaining > 0:
            cbg_size = int(lognormal_sizes(
                state_rng, 1, config.cbg_size_median, config.cbg_size_sigma,
                minimum=1, maximum=config.max_cbg_size,
            )[0])
            cbg_size = min(cbg_size, remaining)
            remaining -= cbg_size
            serial += 1
            # One certifying ISP per CBG: CAF support areas are granted
            # to a single provider (the subsidized monopolist).
            isp_id = isp_ids[int(state_rng.choice(len(isp_ids), p=isp_probabilities))]
            num_blocks = int(min(max(1, round(cbg_size / 25) + int(state_rng.integers(0, 4))), 99))
            block_geoids = _synthetic_block_geoids(state, serial, num_blocks)
            block_split = allocate_counts(
                cbg_size, state_rng.dirichlet(np.full(num_blocks, 0.6))
            )
            isp_state_addresses[(isp_id, abbr)] = (
                isp_state_addresses.get((isp_id, abbr), 0) + cbg_size
            )
            for block_geoid, block_count in zip(block_geoids, block_split):
                if block_count == 0:
                    continue
                if state_rng.random() < config.rural_block_fraction:
                    rural_blocks.add(block_geoid)
                fx, fy = state_rng.uniform(0.02, 0.98, size=2)
                anchor = state.bounds.interpolate(float(fx), float(fy))
                for index in range(int(block_count)):
                    download, upload = certified_speed_for(isp_id, state_rng)
                    caf_map.add(DeploymentRecord(
                        address_id=f"nat-{block_geoid}-{index:05d}",
                        isp_id=isp_id,
                        state_abbreviation=abbr,
                        block_geoid=block_geoid,
                        longitude=anchor.longitude,
                        latitude=anchor.latitude,
                        households=1 + (int(state_rng.integers(0, 10)) == 0),
                        technology="fiber" if download >= 100 else "dsl",
                        certified_download_mbps=download,
                        certified_upload_mbps=upload,
                        certified_latency_ms=float(state_rng.uniform(20.0, 95.0)),
                    ))

    ledger = _build_ledger(config, fund_shares, isp_state_addresses, rng)
    return NationalDataset(
        caf_map=caf_map,
        ledger=ledger,
        rural_blocks=frozenset(rural_blocks),
    )


def _build_ledger(
    config: NationalDatasetConfig,
    fund_shares: dict[str, float],
    isp_state_addresses: dict[tuple[str, str], int],
    rng: np.random.Generator,
) -> DisbursementLedger:
    """Distribute each ISP's fund share across its states.

    Within an ISP, state amounts follow its address footprint with
    per-state cost tilts (deploying in Arkansas hills costs more per
    location than in Texas plains) so the fund ranking differs from the
    address ranking the way Figures 1a/1d differ.
    """
    ledger = DisbursementLedger()
    addresses_by_isp: dict[str, dict[str, int]] = {}
    for (isp_id, abbr), count in isp_state_addresses.items():
        addresses_by_isp.setdefault(isp_id, {})[abbr] = count
    fallback_states = ("TX", "MN", "AR", "WI", "IA", "MO", "GA", "NC")
    for isp_id, share in fund_shares.items():
        isp_total = share * config.total_funds_usd
        if isp_total <= 0:
            continue
        state_counts = addresses_by_isp.get(isp_id)
        if not state_counts:
            # At small scales a tail ISP may draw zero addresses; its
            # funding still exists, so spread it over typical CAF states.
            chosen = rng.choice(len(fallback_states), size=3, replace=False)
            state_counts = {fallback_states[int(i)]: 1 for i in chosen}
        weights = {
            abbr: count * _STATE_FUND_TILTS.get(abbr, 1.0)
            * float(rng.uniform(0.92, 1.08))
            for abbr, count in state_counts.items()
        }
        weight_total = sum(weights.values())
        for abbr, weight in weights.items():
            ledger.add(Disbursement(
                isp_id=isp_id,
                state_abbreviation=abbr,
                amount_usd=isp_total * weight / weight_total,
            ))
    return ledger
