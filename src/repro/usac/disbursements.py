"""CAF II disbursement ledger.

Figures 1d/1e of the paper show state-wise and ISP-wise disbursed
funds: roughly $10 billion total, with the top-4 ISPs receiving 37.5%
and state totals topping out near $500M. The ledger stores per
(ISP, state) disbursements and provides the rollups those figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["Disbursement", "DisbursementLedger"]


@dataclass(frozen=True)
class Disbursement:
    """Cumulative CAF II support paid to one ISP in one state."""

    isp_id: str
    state_abbreviation: str
    amount_usd: float

    def __post_init__(self) -> None:
        if self.amount_usd < 0:
            raise ValueError("disbursement amount must be non-negative")


class DisbursementLedger:
    """Indexed collection of disbursements."""

    def __init__(self, disbursements: Iterable[Disbursement] = ()):
        self._entries: list[Disbursement] = []
        self._by_pair: dict[tuple[str, str], float] = {}
        for entry in disbursements:
            self.add(entry)

    def add(self, entry: Disbursement) -> None:
        """Record a disbursement; repeated (ISP, state) pairs accumulate."""
        self._entries.append(entry)
        key = (entry.isp_id, entry.state_abbreviation)
        self._by_pair[key] = self._by_pair.get(key, 0.0) + entry.amount_usd

    def __len__(self) -> int:
        return len(self._entries)

    def total_usd(self) -> float:
        """Program-wide total."""
        return sum(self._by_pair.values())

    def amount_for(self, isp_id: str, state_abbreviation: str) -> float:
        """Cumulative amount for one (ISP, state) pair."""
        return self._by_pair.get((isp_id, state_abbreviation), 0.0)

    def by_state(self) -> dict[str, float]:
        """State totals (Figure 1d)."""
        totals: dict[str, float] = {}
        for (_, state), amount in self._by_pair.items():
            totals[state] = totals.get(state, 0.0) + amount
        return totals

    def by_isp(self) -> dict[str, float]:
        """ISP totals (Figure 1e)."""
        totals: dict[str, float] = {}
        for (isp, _), amount in self._by_pair.items():
            totals[isp] = totals.get(isp, 0.0) + amount
        return totals

    def top_isps(self, n: int) -> list[tuple[str, float]]:
        """The ``n`` largest recipients, descending."""
        if n <= 0:
            raise ValueError("n must be positive")
        return sorted(self.by_isp().items(), key=lambda kv: -kv[1])[:n]

    def share_of_top_isps(self, n: int) -> float:
        """Fraction of all funds held by the top ``n`` ISPs (the paper:
        top-4 received 37.5%)."""
        total = self.total_usd()
        if total == 0:
            raise ValueError("ledger is empty")
        return sum(amount for _, amount in self.top_isps(n)) / total
