"""The HUBB certification portal and USAC verification reviews.

ISPs report deployment progress to USAC annually through the High-Cost
Universal Broadband (HUBB) portal, attaching documentary evidence; USAC
then verifies a random sample of certified locations (Section 2.2,
"Regulatory oversight"). This module simulates that workflow so the
repository can contrast USAC's sampled, ISP-cooperative oversight with
the paper's independent external audit:

* :class:`HubbPortal` accepts :class:`CertificationBatch` submissions
  and accumulates the CAF Map.
* :meth:`HubbPortal.run_verification_review` draws a random sample of
  certified locations, checks them against ground truth, and reports a
  compliance gap — the metric USAC publishes with "scarce" detail
  (Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isp.deployment import GroundTruth
from repro.stats.distributions import stable_rng
from repro.usac.dataset import CafMapDataset
from repro.usac.schema import DeploymentRecord

__all__ = ["CertificationBatch", "VerificationReview", "HubbPortal"]

ACCEPTED_EVIDENCE = (
    "website_screenshot",   # public-facing availability tool
    "subscriber_bill",
    "engineering_email",    # release of locations to sales/marketing
)


@dataclass(frozen=True)
class CertificationBatch:
    """One ISP's annual HUBB filing."""

    isp_id: str
    filing_year: int
    records: tuple[DeploymentRecord, ...]
    evidence_kind: str = "website_screenshot"

    def __post_init__(self) -> None:
        if self.evidence_kind not in ACCEPTED_EVIDENCE:
            raise ValueError(
                f"evidence {self.evidence_kind!r} not in {ACCEPTED_EVIDENCE}"
            )
        if not self.records:
            raise ValueError("a certification batch cannot be empty")
        wrong = [r.address_id for r in self.records if r.isp_id != self.isp_id]
        if wrong:
            raise ValueError(
                f"batch for {self.isp_id!r} contains records certified by "
                f"other ISPs: {wrong[:3]}"
            )


@dataclass(frozen=True)
class VerificationReview:
    """Outcome of one USAC fund-verification review."""

    isp_id: str
    sampled: int
    confirmed_served: int
    compliance_gap: float

    @property
    def pass_rate(self) -> float:
        """Fraction of the sample confirmed served."""
        if self.sampled == 0:
            return 1.0
        return self.confirmed_served / self.sampled


class HubbPortal:
    """Accumulates certification filings into the public CAF Map."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._dataset = CafMapDataset()
        self._filings: list[CertificationBatch] = []

    @property
    def caf_map(self) -> CafMapDataset:
        """The public dataset assembled from filings so far."""
        return self._dataset

    @property
    def filings(self) -> list[CertificationBatch]:
        """All accepted filings."""
        return list(self._filings)

    def submit(self, batch: CertificationBatch) -> int:
        """Accept a filing; returns the number of records added.

        HUBB performs only structural validation — the paper's core
        criticism is that self-reported data is accepted essentially at
        face value, with verification limited to later sampled reviews.
        """
        for record in batch.records:
            self._dataset.add(record)
        self._filings.append(batch)
        return len(batch.records)

    def run_verification_review(
        self,
        isp_id: str,
        ground_truth: GroundTruth,
        sample_fraction: float = 0.01,
        minimum_sample: int = 10,
    ) -> VerificationReview:
        """Simulate USAC's random verification of one ISP's filings.

        Samples ``sample_fraction`` of the ISP's certified locations
        (at least ``minimum_sample``) and checks each against ground
        truth. The returned ``compliance_gap`` is the unserved fraction
        of the sample — the single number USAC reports publicly.
        """
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        records = self._dataset.for_isp(isp_id)
        if not records:
            raise ValueError(f"no certified locations for {isp_id!r}")
        rng = stable_rng(self._seed, "usac-review", isp_id)
        sample_size = min(
            len(records), max(minimum_sample, round(sample_fraction * len(records)))
        )
        indices = rng.choice(len(records), size=sample_size, replace=False)
        confirmed = sum(
            1 for i in indices
            if ground_truth.serves(isp_id, records[int(i)].address_id)
        )
        return VerificationReview(
            isp_id=isp_id,
            sampled=sample_size,
            confirmed_served=confirmed,
            compliance_gap=1.0 - confirmed / sample_size,
        )
