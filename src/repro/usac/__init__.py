"""USAC substrate: the CAF Map dataset and its supporting machinery.

The Universal Service Administrative Company (USAC) administers CAF
funds and publishes the CAF Map — ISP-certified deployment locations
reported through the High-Cost Universal Broadband (HUBB) portal. The
paper's Section 2.3 characterizes that dataset (Figure 1); this package
reproduces it:

* :mod:`repro.usac.schema` — the deployment-record schema.
* :mod:`repro.usac.dataset` — an indexed container with the filters the
  analyses need.
* :mod:`repro.usac.disbursements` — the state/ISP funding ledger.
* :mod:`repro.usac.hubb` — the HUBB certification portal workflow,
  including USAC's random verification reviews.
* :mod:`repro.usac.generator` — a national synthetic CAF Map calibrated
  to every marginal the paper reports.
"""

from repro.usac.dataset import CafMapDataset
from repro.usac.disbursements import DisbursementLedger, Disbursement
from repro.usac.generator import NationalDatasetConfig, generate_national_dataset
from repro.usac.hubb import CertificationBatch, HubbPortal, VerificationReview
from repro.usac.schema import DeploymentRecord

__all__ = [
    "CafMapDataset",
    "CertificationBatch",
    "Disbursement",
    "DisbursementLedger",
    "DeploymentRecord",
    "HubbPortal",
    "NationalDatasetConfig",
    "VerificationReview",
    "generate_national_dataset",
]
