"""The CAF Map deployment-record schema.

Mirrors the fields the paper lists for USAC's public dataset (Section
2.3): street address identifiers, geographic coordinates, census block,
state, household count, certifying ISP, last-mile technology, and the
certified service quality (download/upload speed, latency).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeploymentRecord"]


@dataclass(frozen=True)
class DeploymentRecord:
    """One ISP-certified CAF deployment location."""

    address_id: str
    isp_id: str
    state_abbreviation: str
    block_geoid: str
    longitude: float
    latitude: float
    households: int
    technology: str
    certified_download_mbps: float
    certified_upload_mbps: float
    certified_latency_ms: float
    funding_program: str = "CAF II Model"

    def __post_init__(self) -> None:
        if len(self.block_geoid) != 15 or not self.block_geoid.isdigit():
            raise ValueError(f"bad block GEOID {self.block_geoid!r}")
        if self.households <= 0:
            raise ValueError("households must be positive")
        if self.certified_download_mbps <= 0 or self.certified_upload_mbps <= 0:
            raise ValueError("certified speeds must be positive")
        if self.certified_latency_ms <= 0:
            raise ValueError("latency must be positive")

    @property
    def block_group_geoid(self) -> str:
        """GEOID of the containing block group."""
        return self.block_geoid[:12]

    @property
    def state_fips(self) -> str:
        """FIPS code of the containing state."""
        return self.block_geoid[:2]

    @property
    def meets_caf_speed_floor(self) -> bool:
        """Whether the *certified* speeds meet the 10/1 Mbps floor
        (nearly all certifications do — Figure 1f)."""
        return (self.certified_download_mbps >= 10.0
                and self.certified_upload_mbps >= 1.0)
