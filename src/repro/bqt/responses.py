"""The BQT response taxonomy.

Appendix 8.3 of the paper walks through every page each ISP's website
can return. :class:`PageKind` enumerates those pages;
:class:`QueryStatus` is the classification BQT logs after interpreting
them ("Serviceable", "No Service", "Address Not Found", "Unknown").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isp.plans import BroadbandPlan

__all__ = ["PageKind", "QueryStatus", "WebsiteResponse"]


class PageKind(enum.Enum):
    """What the ISP website displayed for one query attempt."""

    PLANS_PAGE = "plans_page"                        # e.g. Fig 13a/14b/15b/16c
    EXISTING_SUBSCRIBER_PAGE = "existing_subscriber"  # Fig 15a/16b
    UNKNOWN_PLAN_PAGE = "unknown_plan"               # Frontier: subscriber, no tiers
    NO_SERVICE_PAGE = "no_service"                   # Fig 13e/14c/15c
    CALL_TO_ORDER = "call_to_order"                  # AT&T, Fig 15d
    HUMAN_VERIFICATION = "human_verification"        # CenturyLink, Fig 13c
    DROPDOWN_MISS = "dropdown_miss"                  # address absent from dropdown
    ADDRESS_NOT_FOUND = "address_not_found"          # resolved then rejected, Fig 16e
    REDIRECT_BRIGHTSPEED = "redirect_brightspeed"    # Fig 13b
    REDIRECT_FIDIUM = "redirect_fidium"              # Fig 16g
    ERROR_PAGE = "error_page"                        # transient site failure


class QueryStatus(enum.Enum):
    """BQT's final classification of a query."""

    SERVICEABLE = "serviceable"
    NO_SERVICE = "no_service"
    ADDRESS_NOT_FOUND = "address_not_found"
    UNKNOWN = "unknown"

    @property
    def is_conclusive(self) -> bool:
        """Whether the status answers the serviceability question.

        ``ADDRESS_NOT_FOUND`` is conclusive: the paper treats it "as if
        it was not serviceable" (Appendix 8.3, Consolidated).
        """
        return self is not QueryStatus.UNKNOWN


@dataclass(frozen=True)
class WebsiteResponse:
    """One page returned by a website simulator."""

    page_kind: PageKind
    plans: tuple[BroadbandPlan, ...] = ()
    # A second storefront to consult (CenturyLink → Brightspeed).
    follow_up_site: str | None = None

    def __post_init__(self) -> None:
        plan_pages = (PageKind.PLANS_PAGE, PageKind.EXISTING_SUBSCRIBER_PAGE,
                      PageKind.REDIRECT_FIDIUM)
        if self.plans and self.page_kind not in plan_pages:
            raise ValueError(f"{self.page_kind} cannot carry plans")

    @property
    def indicates_service(self) -> bool:
        """Pages that confirm the address is served."""
        return self.page_kind in (
            PageKind.PLANS_PAGE,
            PageKind.EXISTING_SUBSCRIBER_PAGE,
            PageKind.UNKNOWN_PLAN_PAGE,
            PageKind.REDIRECT_FIDIUM,
        )

    @property
    def indicates_no_service(self) -> bool:
        """Pages that conclusively deny service."""
        return self.page_kind is PageKind.NO_SERVICE_PAGE
