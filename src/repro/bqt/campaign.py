"""Campaign planning: how long would a querying campaign take?

Section 1 of the paper motivates its sampling strategy with campaign
arithmetic: "ethically querying addresses at that scale … would take
more than 6 months (calculated using the median query time for each
ISP)", and "scaling up our data collection to increase the number of
consecutive queries was found to overload the website". This module
makes that arithmetic a first-class, testable object:

* :class:`CampaignPlan` — addresses per ISP, parallel workers per ISP
  (BQT ran many Docker containers), and a politeness cap on concurrent
  queries per ISP so the plan never exceeds what the storefront
  tolerates.
* :func:`estimate_duration` — expected wall-clock for a plan from the
  per-ISP lognormal query-time model (the Figure 12 calibration).
* :func:`plan_full_census` / :func:`plan_study` — the two campaigns the
  paper contrasts: all 6.13M CAF addresses vs the stratified sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.isp.registry import isp_by_id

__all__ = [
    "CampaignPlan",
    "CampaignEstimate",
    "estimate_duration",
    "plan_full_census",
    "plan_study",
    "MAX_POLITE_WORKERS_PER_ISP",
]

# Beyond a handful of concurrent sessions the paper found storefronts
# degrading ("scaling up … was found to overload the website").
MAX_POLITE_WORKERS_PER_ISP = 8

SECONDS_PER_DAY = 86_400.0
DAYS_PER_MONTH = 30.44

# The real CAF address counts for the paper's full-census thought
# experiment (Section 3.1): the top-3 ISPs' 54% of 6.13M plus
# Consolidated's 138k.
REAL_ADDRESSES_BY_ISP: Mapping[str, int] = {
    "att": 1_960_000,
    "centurylink": 740_000,
    "frontier": 610_000,
    "consolidated": 138_000,
}


@dataclass(frozen=True)
class CampaignPlan:
    """A querying campaign: per-ISP address counts and workers."""

    addresses_by_isp: Mapping[str, int]
    workers_by_isp: Mapping[str, int]
    retry_overhead: float = 1.15  # extra attempts per address, average

    def __post_init__(self) -> None:
        if not self.addresses_by_isp:
            raise ValueError("a campaign needs at least one ISP")
        for isp_id, count in self.addresses_by_isp.items():
            if count < 0:
                raise ValueError(f"negative address count for {isp_id}")
            workers = self.workers_by_isp.get(isp_id, 1)
            if workers < 1:
                raise ValueError(f"{isp_id} needs at least one worker")
            if workers > MAX_POLITE_WORKERS_PER_ISP:
                raise ValueError(
                    f"{workers} workers against {isp_id} exceeds the "
                    f"politeness cap of {MAX_POLITE_WORKERS_PER_ISP} "
                    "(the paper found higher concurrency overloads the "
                    "storefront)"
                )
        if self.retry_overhead < 1.0:
            raise ValueError("retry overhead cannot be below 1")

    @property
    def total_addresses(self) -> int:
        """All addresses across ISPs."""
        return sum(self.addresses_by_isp.values())


@dataclass(frozen=True)
class CampaignEstimate:
    """Duration estimate for one campaign plan."""

    per_isp_days: Mapping[str, float]
    bottleneck_isp: str

    @property
    def wall_clock_days(self) -> float:
        """Campaign duration: ISPs run in parallel, so the slowest
        (usually AT&T) sets the wall clock."""
        return max(self.per_isp_days.values())

    @property
    def wall_clock_months(self) -> float:
        """Duration in months (the unit of the paper's claim)."""
        return self.wall_clock_days / DAYS_PER_MONTH

    @property
    def sequential_days(self) -> float:
        """Single-worker-single-ISP equivalent (upper bound)."""
        return sum(self.per_isp_days.values())


def _mean_query_seconds(isp_id: str) -> float:
    """Mean of the ISP's lognormal query-time model.

    mean = median * exp(sigma^2 / 2) for a lognormal parameterized by
    its median.
    """
    info = isp_by_id(isp_id)
    return info.median_query_seconds * math.exp(info.query_time_sigma**2 / 2)


def estimate_duration(plan: CampaignPlan) -> CampaignEstimate:
    """Expected wall-clock for a plan under the Figure 12 time model."""
    per_isp_days = {}
    for isp_id, count in plan.addresses_by_isp.items():
        workers = plan.workers_by_isp.get(isp_id, 1)
        seconds = count * plan.retry_overhead * _mean_query_seconds(isp_id)
        per_isp_days[isp_id] = seconds / workers / SECONDS_PER_DAY
    bottleneck = max(per_isp_days, key=per_isp_days.get)
    return CampaignEstimate(per_isp_days=per_isp_days,
                            bottleneck_isp=bottleneck)


def plan_full_census(
    workers_per_isp: int = MAX_POLITE_WORKERS_PER_ISP,
) -> CampaignPlan:
    """The paper's rejected option: query every CAF address of the four
    study ISPs."""
    return CampaignPlan(
        addresses_by_isp=dict(REAL_ADDRESSES_BY_ISP),
        workers_by_isp={isp: workers_per_isp for isp in REAL_ADDRESSES_BY_ISP},
    )


def plan_study(
    addresses_by_isp: Mapping[str, int],
    workers_per_isp: int = MAX_POLITE_WORKERS_PER_ISP,
) -> CampaignPlan:
    """The stratified-sample campaign actually run."""
    return CampaignPlan(
        addresses_by_isp=dict(addresses_by_isp),
        workers_by_isp={isp: workers_per_isp for isp in addresses_by_isp},
    )
