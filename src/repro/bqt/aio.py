"""repro.bqt.aio — the asyncio BQT session engine.

The paper's fleet kept throughput up by holding many storefront
sessions in flight at once while never exceeding the per-ISP politeness
cap. The process-sharded runtime reproduces the fleet shape, but each
worker still drives one session at a time; this module gives one worker
the fleet's trick: an event loop that interleaves query sessions
against *different* storefronts, with a :class:`PolitenessGate` (a
per-ISP token bucket) enforcing the concurrent-session cap exactly.

Determinism is preserved by construction, not by luck:

* every session draws from its own RNG stream
  (``stable_rng(seed, "engine", isp, address_id)``), created when the
  session starts and advanced only inside its own
  :meth:`~repro.bqt.engine.QuerySession.step` calls — interleaving
  steps of different sessions cannot reorder any stream's draws;
* sessions that *do* share state (the proxy pool inside one cell's
  engine) run strictly in cell order, because the cell coroutines
  reuse the exact query sequences of :mod:`repro.core.collection`;
* results are keyed by cell and merged in canonical order by
  :mod:`repro.runtime.merge`, never in completion order.

Together these make the async engine's merged logbook *bit-identical*
to the serial campaign's — the invariant
``tests/harness/equivalence.py`` checks differentially across every
backend.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager

from repro.addresses.models import StreetAddress
from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.engine import BqtEngine, EngineConfig
from repro.bqt.logbook import QueryRecord
from repro.core.collection import (
    Q3BlockOutcome,
    q3_block_setup,
    q3_query_sequence,
    q12_cell_setup,
    q12_query_sequence,
    settle_q12_record,
    settle_q3_mode,
)
from repro.core.sampling import SamplePlan, SamplingPolicy
from repro.obs.metrics import REGISTRY as _METRICS
from repro.synth.world import World

__all__ = [
    "PolitenessGate",
    "SessionMonitor",
    "query_async",
    "run_q12_cell_async",
    "run_q3_block_async",
    "run_cells_async",
]


class SessionMonitor:
    """Politeness *evidence*, measured apart from its enforcement.

    Counts sessions actually in flight per ISP at the query layer
    (inside :func:`query_async`, between session open and final
    record), not inside :class:`PolitenessGate` — a watermark read
    from the gate's own counter is bounded by the very semaphore under
    test and can never catch an ungated query path. This one can: any
    query the drivers issue is counted whether or not it holds a
    token, so the harness's cap assertions are falsifiable.
    """

    def __init__(self):
        self._active: dict[str, int] = {}
        self._watermarks: dict[str, int] = {}

    @property
    def watermarks(self) -> dict[str, int]:
        """Max concurrent in-flight sessions observed, per ISP."""
        return dict(self._watermarks)

    def enter(self, isp_id: str) -> None:
        """Account a session opening against the storefront."""
        count = self._active.get(isp_id, 0) + 1
        self._active[isp_id] = count
        if count > self._watermarks.get(isp_id, 0):
            self._watermarks[isp_id] = count

    def exit(self, isp_id: str) -> None:
        """Account a session closing."""
        self._active[isp_id] -= 1


class PolitenessGate:
    """A per-ISP token bucket bounding concurrent storefront sessions.

    Each ISP gets ``per_isp_cap`` tokens; a session holds one token for
    its whole lifetime against that storefront. The gate also keeps the
    politeness evidence the test harness audits: a high-water mark of
    concurrent in-flight sessions per ISP, plus — only when
    ``record_trace`` is set, since it grows with every session — an
    (acquire/release) event trace.
    """

    def __init__(self, per_isp_cap: int = MAX_POLITE_WORKERS_PER_ISP,
                 record_trace: bool = False):
        if per_isp_cap < 1:
            raise ValueError("per_isp_cap must be at least 1")
        if per_isp_cap > MAX_POLITE_WORKERS_PER_ISP:
            raise ValueError(
                f"per_isp_cap {per_isp_cap} exceeds the politeness cap "
                f"of {MAX_POLITE_WORKERS_PER_ISP}")
        self._cap = per_isp_cap
        self._semaphores: dict[str, asyncio.Semaphore] = {}
        self._inflight: dict[str, int] = {}
        self._watermarks: dict[str, int] = {}
        self._trace: list[tuple[str, str, int]] | None = (
            [] if record_trace else None)
        # Sidecar telemetry: how long sessions wait on politeness
        # tokens. Monotonic deltas only — never written to logbooks.
        self._wait_hist = _METRICS.histogram(
            "politeness_gate_wait_seconds")
        self._sessions = _METRICS.counter("politeness_gate_sessions_total")

    @property
    def per_isp_cap(self) -> int:
        """Tokens per storefront."""
        return self._cap

    @property
    def watermarks(self) -> dict[str, int]:
        """Max concurrent in-flight sessions observed, per ISP."""
        return dict(self._watermarks)

    @property
    def trace(self) -> list[tuple[str, str, int]]:
        """(event, isp, inflight-after-event) politeness trace (empty
        unless the gate was built with ``record_trace``)."""
        return list(self._trace or ())

    def _semaphore(self, isp_id: str) -> asyncio.Semaphore:
        if isp_id not in self._semaphores:
            self._semaphores[isp_id] = asyncio.Semaphore(self._cap)
            self._inflight[isp_id] = 0
            self._watermarks[isp_id] = 0
        return self._semaphores[isp_id]

    @asynccontextmanager
    async def session(self, isp_id: str):
        """Hold one of the ISP's session tokens for the block's body."""
        semaphore = self._semaphore(isp_id)
        waited_from = time.monotonic()
        await semaphore.acquire()
        self._wait_hist.observe(time.monotonic() - waited_from)
        self._sessions.inc()
        self._inflight[isp_id] += 1
        self._watermarks[isp_id] = max(
            self._watermarks[isp_id], self._inflight[isp_id])
        if self._trace is not None:
            self._trace.append(("acquire", isp_id, self._inflight[isp_id]))
        try:
            yield
        finally:
            self._inflight[isp_id] -= 1
            if self._trace is not None:
                self._trace.append(("release", isp_id, self._inflight[isp_id]))
            semaphore.release()


async def query_async(
    engine: BqtEngine,
    address: StreetAddress,
    monitor: SessionMonitor | None = None,
) -> QueryRecord:
    """Query one address, yielding the loop between attempts.

    Steps the same :class:`~repro.bqt.engine.QuerySession` state
    machine the blocking :meth:`~repro.bqt.engine.BqtEngine.query`
    drives, but suspends at every attempt boundary — the point where
    the real BQT waits on a page load — so sessions against other
    storefronts can run during the wait. ``monitor`` (when given)
    records the session's lifetime for politeness evidence.
    """
    session = engine.begin(address)
    # Pacing sleeps happen *here* with an await, never inside step():
    # a blocking sleep in the state machine would stall every other
    # storefront's session sharing this event loop.
    pace = engine._config.pace
    if monitor is not None:
        monitor.enter(engine.isp_id)
    try:
        while not session.done:
            took = session.step()
            await asyncio.sleep(took * pace if pace > 0 and took > 0 else 0)
    finally:
        if monitor is not None:
            monitor.exit(engine.isp_id)
    return session.record


async def run_q12_cell_async(
    world: World,
    isp_id: str,
    cbg: str,
    addresses: list[StreetAddress],
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    monitor: SessionMonitor | None = None,
) -> tuple[SamplePlan, list[QueryRecord]]:
    """Async twin of :func:`repro.core.collection.run_q12_cell`.

    Drives the *same* :func:`~repro.core.collection.q12_query_sequence`
    the blocking driver uses, so the address order, replacement draws,
    and record stream are identical — only the waiting is cooperative.
    """
    if max_replacements < 0:
        raise ValueError("max_replacements must be non-negative")
    engine, plan = q12_cell_setup(world, isp_id, cbg, addresses,
                                  policy=policy, engine_config=engine_config)
    records: list[QueryRecord] = []
    sequence = q12_query_sequence(plan, max_replacements)
    try:
        address, failed = next(sequence)
        while True:
            record = settle_q12_record(
                await query_async(engine, address, monitor), failed)
            records.append(record)
            address, failed = sequence.send(record)
    except StopIteration:
        pass
    return plan, records


async def run_q3_block_async(
    world: World,
    block_geoid: str,
    engine_config: EngineConfig | None = None,
    gate: PolitenessGate | None = None,
    monitor: SessionMonitor | None = None,
) -> Q3BlockOutcome | None:
    """Async twin of :func:`repro.core.collection.run_q3_block`.

    The caller is expected to hold the *incumbent's* gate token for the
    block's lifetime; cable probes additionally take (and promptly
    return) a token for the cable storefront, so overlap ISPs are
    politeness-capped too.
    """
    setup = q3_block_setup(world, block_geoid, engine_config)
    if setup is None:
        return None
    outcome, engines, caf_addresses, non_caf = setup
    records: list[QueryRecord] = []
    for role, address, mode in q3_query_sequence(
            caf_addresses, non_caf, engines["cable"] is not None):
        if role == "cable" and gate is not None:
            async with gate.session(engines["cable"].isp_id):
                record = await query_async(engines["cable"], address, monitor)
        else:
            record = await query_async(engines[role], address, monitor)
        records.append(record)
        settled = settle_q3_mode(mode, record)
        if settled is not None:
            outcome.modes[address.address_id] = settled
    outcome.records = tuple(records)
    return outcome


async def run_cells_async(
    world: World,
    q12_cells,
    q3_blocks,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    max_inflight: int = 8,
    per_isp_cap: int = MAX_POLITE_WORKERS_PER_ISP,
) -> tuple[dict, dict, dict[str, int]]:
    """Run one shard's cells on the current event loop, interleaved.

    ``max_inflight`` bounds the loop's total concurrent sessions (the
    utilization knob); ``per_isp_cap`` is the politeness bound each
    storefront gets (the ethics knob — callers running several loops at
    once must divide the global cap between them, which
    :class:`~repro.runtime.executor.RuntimeConfig` does).

    Returns ``(q12_records, q3_outcomes, watermarks)`` keyed by cell —
    *not* ordered by completion — plus per-ISP concurrency high-water
    marks for politeness auditing, measured by a
    :class:`SessionMonitor` at the query layer rather than read back
    from the gate that enforces the cap.
    """
    if max_inflight < 1:
        raise ValueError("max_inflight must be at least 1")
    # Lock ordering is gate -> slot for cells, but a Q3 cable probe
    # takes the cable ISP's token while holding a slot. That is only
    # cycle-free because cable-overlap ISPs are never also primary
    # storefronts — neither a Q1/Q2 cell's ISP nor a Q3 incumbent;
    # reject the (unsupported, study-design-violating) overlap instead
    # of deadlocking on it.
    cable_isps = set()
    primary_isps = {cell.isp_id for cell in q12_cells}
    for block in q3_blocks:
        competition = world.block_competition[block]
        primary_isps.add(competition.incumbent_isp_id)
        if competition.cable_isp_id:
            cable_isps.add(competition.cable_isp_id)
    overlap = primary_isps & cable_isps
    if overlap:
        raise ValueError(
            f"cannot interleave {sorted(overlap)} as both a primary "
            "storefront and a Q3 cable overlap in one shard")
    gate = PolitenessGate(per_isp_cap)
    monitor = SessionMonitor()
    slots = asyncio.Semaphore(max_inflight)
    q12_records: dict = {}
    q3_outcomes: dict = {}
    # caf_addresses_by_cbg regroups a whole (ISP, state) footprint per
    # call; share the grouping across this shard's cells.
    grouped: dict[tuple[str, str], dict] = {}

    # Gate before slot: a cell blocked on its storefront's politeness
    # budget must not occupy a loop slot, or a run of same-ISP cells
    # would starve other storefronts of the very backfill this engine
    # exists for. Slot holders are therefore always runnable.
    async def q12_task(cell) -> None:
        async with gate.session(cell.isp_id):
            async with slots:
                key = (cell.isp_id, cell.state)
                if key not in grouped:
                    grouped[key] = world.caf_addresses_by_cbg(*key)
                _plan, records = await run_q12_cell_async(
                    world, cell.isp_id, cell.cbg, grouped[key][cell.cbg],
                    policy=policy, engine_config=engine_config,
                    max_replacements=max_replacements, monitor=monitor,
                )
                q12_records[cell] = tuple(records)

    async def q3_task(block_geoid: str) -> None:
        incumbent = world.block_competition[block_geoid].incumbent_isp_id
        async with gate.session(incumbent):
            async with slots:
                q3_outcomes[block_geoid] = await run_q3_block_async(
                    world, block_geoid, engine_config, gate=gate,
                    monitor=monitor)

    async with asyncio.TaskGroup() as group:
        for cell in q12_cells:
            group.create_task(q12_task(cell))
        for block_geoid in q3_blocks:
            group.create_task(q3_task(block_geoid))
    return q12_records, q3_outcomes, monitor.watermarks
