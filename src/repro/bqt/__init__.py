"""BQT — the broadband-plan querying tool, simulated.

The real BQT [40] drives ISP web storefronts with a browser automation
stack behind a residential-proxy pool, types a street address into the
availability form, and scrapes the advertised plans. This package
reproduces that system against simulated ISP websites:

* :mod:`repro.bqt.responses` — the response taxonomy the paper's
  appendix documents per ISP (plans page, no-service page, call to
  order, human verification, dropdown miss, Brightspeed/Fidium
  redirects, unknown-plan page).
* :mod:`repro.bqt.errors` — the Table 2 error taxonomy (select
  drop-down, analyzing result, empty traceback, clicking button, other).
* :mod:`repro.bqt.websites` — per-ISP website state machines that
  consult ground truth and inject the failure modes each real site
  exhibited.
* :mod:`repro.bqt.proxy` — the rotating proxy pool.
* :mod:`repro.bqt.engine` — the query engine with retries, proxy
  rotation, and the per-ISP query-time model (Figure 12); each query
  is a resumable :class:`~repro.bqt.engine.QuerySession` state
  machine.
* :mod:`repro.bqt.aio` — the asyncio session engine: one event loop
  interleaves sessions against different storefronts under a per-ISP
  politeness token bucket (imported directly, not re-exported here, to
  keep ``repro.bqt`` import-light).
* :mod:`repro.bqt.logbook` — the query log every analysis consumes.
"""

from repro.bqt.campaign import (
    CampaignEstimate,
    CampaignPlan,
    estimate_duration,
    plan_full_census,
    plan_study,
)
from repro.bqt.engine import BqtEngine, EngineConfig, QuerySession
from repro.bqt.errors import ErrorCategory
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.proxy import ProxyEndpoint, ProxyPool
from repro.bqt.responses import PageKind, QueryStatus, WebsiteResponse
from repro.bqt.websites import build_website, IspWebsite

__all__ = [
    "BqtEngine",
    "CampaignEstimate",
    "CampaignPlan",
    "EngineConfig",
    "estimate_duration",
    "plan_full_census",
    "plan_study",
    "ErrorCategory",
    "IspWebsite",
    "PageKind",
    "ProxyEndpoint",
    "ProxyPool",
    "QueryLog",
    "QueryRecord",
    "QuerySession",
    "QueryStatus",
    "WebsiteResponse",
    "build_website",
]
