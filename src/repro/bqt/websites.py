"""Per-ISP website simulators.

Each simulator reproduces the storefront behaviour the paper's appendix
documents for that ISP, driven by two inputs: the ground-truth service
state of the queried address, and stochastic failure modes calibrated
to Table 2. Failures come in two flavours:

* *persistent* — a property of the (ISP, address) pair: the address
  never appears in the dropdown no matter how often it is retyped (the
  paper re-queried 8,164 such Frontier addresses "at least two times to
  verify that the error persisted"). Implemented as a deterministic
  hash draw so retries reproduce the failure.
* *transient* — bot-detection walls, human-verification challenges,
  flaky UI clicks. Implemented as per-attempt draws, amplified by the
  suspicion of the proxy endpoint in use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.addresses.models import StreetAddress
from repro.bqt.responses import PageKind, WebsiteResponse
from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.stats.distributions import stable_rng

__all__ = ["IspWebsite", "build_website"]


@dataclass(frozen=True)
class FailureRates:
    """Failure-mode probabilities for one website."""

    persistent_dropdown_miss: float = 0.0
    persistent_dropdown_miss_by_state: dict[str, float] | None = None
    call_to_order_if_served: float = 0.0
    human_verification: float = 0.0
    # Per-address sticky failures: a human-verification wall or a broken
    # page that every retry hits again (the paper verified such errors
    # "persisted" across repeated queries).
    persistent_human_verification: float = 0.0
    persistent_error: float = 0.0
    transient_error: float = 0.02
    address_not_found_if_unserved: float = 0.0

    def dropdown_rate(self, state_abbreviation: str) -> float:
        """Persistent dropdown-miss rate, with per-state overrides."""
        if self.persistent_dropdown_miss_by_state:
            override = self.persistent_dropdown_miss_by_state.get(state_abbreviation)
            if override is not None:
                return override
        return self.persistent_dropdown_miss


class IspWebsite:
    """A simulated ISP storefront."""

    def __init__(
        self,
        isp_id: str,
        ground_truth: GroundTruth,
        rates: FailureRates,
        bot_hostility: float,
        seed: int = 0,
    ):
        if not 0.0 <= bot_hostility <= 1.0:
            raise ValueError("bot_hostility must be in [0, 1]")
        self.isp_id = isp_id
        self.bot_hostility = bot_hostility
        self._truth = ground_truth
        self._rates = rates
        self._seed = seed

    # ------------------------------------------------------------------
    # Deterministic per-address properties
    # ------------------------------------------------------------------
    def _address_roll(self, address: StreetAddress, purpose: str) -> float:
        """A stable uniform draw for one (address, purpose) pair."""
        rng = stable_rng(self._seed, "site", self.isp_id, purpose, address.address_id)
        return float(rng.random())

    def has_persistent_dropdown_miss(self, address: StreetAddress) -> bool:
        """Whether this address never resolves in the dropdown."""
        rate = self._rates.dropdown_rate(address.state_abbreviation)
        return self._address_roll(address, "dropdown") < rate

    def is_call_to_order(self, address: StreetAddress, truth: ServiceTruth) -> bool:
        """Whether the site deflects this (served) address to a phone call."""
        if not truth.serves:
            return False
        return self._address_roll(address, "call") < self._rates.call_to_order_if_served

    # ------------------------------------------------------------------
    def respond(
        self,
        address: StreetAddress,
        rng: np.random.Generator,
        extra_error_probability: float = 0.0,
    ) -> WebsiteResponse:
        """Serve one query attempt for ``address``."""
        truth = self._truth.truth_for(self.isp_id, address.address_id)

        if self.has_persistent_dropdown_miss(address):
            return WebsiteResponse(PageKind.DROPDOWN_MISS)
        if (self._rates.persistent_human_verification
                and self._address_roll(address, "phv")
                < self._rates.persistent_human_verification):
            return WebsiteResponse(PageKind.HUMAN_VERIFICATION)
        if (self._rates.persistent_error
                and self._address_roll(address, "perr")
                < self._rates.persistent_error):
            return WebsiteResponse(PageKind.ERROR_PAGE)
        if self._rates.human_verification and rng.random() < (
            self._rates.human_verification + extra_error_probability
        ):
            return WebsiteResponse(PageKind.HUMAN_VERIFICATION)
        if rng.random() < self._rates.transient_error + extra_error_probability:
            return WebsiteResponse(PageKind.ERROR_PAGE)
        if self.is_call_to_order(address, truth):
            return WebsiteResponse(PageKind.CALL_TO_ORDER)
        return self._respond_from_truth(address, truth)

    def _respond_from_truth(
        self, address: StreetAddress, truth: ServiceTruth
    ) -> WebsiteResponse:
        if not truth.serves:
            not_found_rate = self._rates.address_not_found_if_unserved
            if not_found_rate and self._address_roll(address, "nf") < not_found_rate:
                return WebsiteResponse(PageKind.ADDRESS_NOT_FOUND)
            return WebsiteResponse(PageKind.NO_SERVICE_PAGE)
        if truth.existing_subscriber and not truth.plans:
            return WebsiteResponse(PageKind.UNKNOWN_PLAN_PAGE)
        page = (PageKind.EXISTING_SUBSCRIBER_PAGE if truth.existing_subscriber
                else PageKind.PLANS_PAGE)
        return WebsiteResponse(page, plans=truth.plans)


class CenturyLinkWebsite(IspWebsite):
    """CenturyLink, including the Brightspeed hand-off.

    CenturyLink sold some CAF obligations to Brightspeed; for a share
    of served addresses centurylink.com redirects to brightspeed.com,
    which then displays the plans (paper Appendix 8.3, Figures 13b/13d).
    """

    BRIGHTSPEED_SHARE = 0.35

    def _respond_from_truth(
        self, address: StreetAddress, truth: ServiceTruth
    ) -> WebsiteResponse:
        if truth.serves and self._address_roll(address, "bspd") < self.BRIGHTSPEED_SHARE:
            return WebsiteResponse(
                PageKind.REDIRECT_BRIGHTSPEED, follow_up_site="brightspeed"
            )
        return super()._respond_from_truth(address, truth)

    def respond_brightspeed(
        self, address: StreetAddress, rng: np.random.Generator
    ) -> WebsiteResponse:
        """The follow-up query on brightspeed.com."""
        truth = self._truth.truth_for(self.isp_id, address.address_id)
        if rng.random() < 0.02:
            return WebsiteResponse(PageKind.ERROR_PAGE)
        if not truth.serves:
            return WebsiteResponse(PageKind.NO_SERVICE_PAGE)
        return WebsiteResponse(PageKind.PLANS_PAGE, plans=truth.plans)


class ConsolidatedWebsite(IspWebsite):
    """Consolidated Communications, including the Fidium redirect.

    Gigabit-class addresses are handed to the Fidium Fiber purchasing
    site (Figures 16g/16h); the paper logs those as serviceable with
    the Fidium plans.
    """

    def _respond_from_truth(
        self, address: StreetAddress, truth: ServiceTruth
    ) -> WebsiteResponse:
        if truth.serves and truth.max_download_mbps >= 1000:
            return WebsiteResponse(PageKind.REDIRECT_FIDIUM, plans=truth.plans)
        return super()._respond_from_truth(address, truth)


_FAILURE_RATES: dict[str, FailureRates] = {
    # AT&T: the flakiest dropdown, a distinctive "Call to Order"
    # deflection, and the heaviest bot detection (Table 2: 43,781
    # dropdown misses, 10,130 call-to-order candidates, 7,606 empty).
    "att": FailureRates(
        persistent_dropdown_miss=0.13,
        call_to_order_if_served=0.10,
        persistent_error=0.022,
        transient_error=0.02,
    ),
    # CenturyLink: clean dropdown; all observed failures were
    # human-verification walls (Table 2: 6,939, all empty-traceback) —
    # the paper could not query 10% of addresses in 215 CBGs because
    # the wall persisted.
    "centurylink": FailureRates(
        human_verification=0.01,
        persistent_human_verification=0.05,
        transient_error=0.0,
    ),
    # Frontier: persistent dropdown misses concentrated in Wisconsin
    # CBGs (8,164 addresses, Appendix 8.1), plus clicking failures.
    "frontier": FailureRates(
        persistent_dropdown_miss=0.05,
        persistent_dropdown_miss_by_state={"WI": 0.17},
        persistent_error=0.03,
        transient_error=0.03,
    ),
    # Consolidated: the address-lookup tool very often offers no
    # suggestion (Table 2: 15,510 of 15,551 errors are dropdown), and
    # resolved-but-rejected addresses surface as "address not found".
    "consolidated": FailureRates(
        persistent_dropdown_miss=0.28,
        address_not_found_if_unserved=0.25,
        transient_error=0.01,
    ),
    "xfinity": FailureRates(persistent_dropdown_miss=0.02, transient_error=0.02),
    "spectrum": FailureRates(persistent_dropdown_miss=0.02, transient_error=0.02),
}

_BOT_HOSTILITY = {
    "att": 1.0, "centurylink": 0.4, "frontier": 0.45,
    "consolidated": 0.3, "xfinity": 0.2, "spectrum": 0.2,
}

_WEBSITE_CLASSES = {
    "centurylink": CenturyLinkWebsite,
    "consolidated": ConsolidatedWebsite,
}


def build_website(isp_id: str, ground_truth: GroundTruth, seed: int = 0) -> IspWebsite:
    """Construct the calibrated website simulator for one ISP."""
    rates = _FAILURE_RATES.get(isp_id)
    if rates is None:
        raise KeyError(f"no website simulator for ISP {isp_id!r}")
    cls = _WEBSITE_CLASSES.get(isp_id, IspWebsite)
    return cls(
        isp_id=isp_id,
        ground_truth=ground_truth,
        rates=rates,
        bot_hostility=_BOT_HOSTILITY[isp_id],
        seed=seed,
    )
