"""The Table 2 error taxonomy.

When a BQT attempt fails, the traceback falls into one of the paper's
five categories. Table 2 gives the per-ISP breakdown; the proportions
below are those counts normalized within each ISP, and the per-attempt
error probabilities are the ISP's total error count divided by its
total attempts (collected + errored).
"""

from __future__ import annotations

import enum
from types import MappingProxyType
from typing import Mapping

import numpy as np

__all__ = [
    "ErrorCategory",
    "ERROR_MIX_BY_ISP",
    "ERROR_PROBABILITY_BY_ISP",
    "sample_error_category",
]


class ErrorCategory(enum.Enum):
    """Why a query attempt failed (Table 2 column)."""

    SELECT_DROPDOWN = "select_dropdown"      # address missing from dropdown
    ANALYZING_RESULT = "analyzing_result"    # result page unparsable / call-to-order
    EMPTY_TRACEBACK = "empty_traceback"      # silent failure (human verification)
    CLICKING_BUTTON = "clicking_button"      # UI element not clickable
    OTHER = "other"


# Table 2 counts normalized per ISP.
ERROR_MIX_BY_ISP: Mapping[str, Mapping[ErrorCategory, float]] = MappingProxyType({
    "att": MappingProxyType({
        ErrorCategory.SELECT_DROPDOWN: 43_781 / 61_768,
        ErrorCategory.ANALYZING_RESULT: 10_130 / 61_768,
        ErrorCategory.EMPTY_TRACEBACK: 7_606 / 61_768,
        ErrorCategory.OTHER: 14 / 61_768,
    }),
    "frontier": MappingProxyType({
        ErrorCategory.SELECT_DROPDOWN: 17_614 / 26_791,
        ErrorCategory.EMPTY_TRACEBACK: 6_210 / 26_791,
        ErrorCategory.CLICKING_BUTTON: 2_967 / 26_791,
    }),
    "centurylink": MappingProxyType({
        ErrorCategory.EMPTY_TRACEBACK: 1.0,   # human-verification walls
    }),
    "consolidated": MappingProxyType({
        ErrorCategory.SELECT_DROPDOWN: 15_510 / 15_551,
        ErrorCategory.ANALYZING_RESULT: 33 / 15_551,
        ErrorCategory.OTHER: 8 / 15_551,
    }),
    "xfinity": MappingProxyType({
        ErrorCategory.SELECT_DROPDOWN: 0.85,
        ErrorCategory.OTHER: 0.15,
    }),
    "spectrum": MappingProxyType({
        ErrorCategory.SELECT_DROPDOWN: 0.85,
        ErrorCategory.OTHER: 0.15,
    }),
})

# Per-attempt error probability: Table 2 errors / (Table 3 collected +
# Table 2 errors). Consolidated's dropdown was by far the flakiest.
ERROR_PROBABILITY_BY_ISP: Mapping[str, float] = MappingProxyType({
    "att": 61_768 / (233_247 + 61_768),
    "frontier": 26_791 / (169_766 + 26_791),
    "centurylink": 6_939 / (111_841 + 6_939),
    "consolidated": 15_551 / (22_806 + 15_551),
    "xfinity": 0.04,
    "spectrum": 0.04,
})


def sample_error_category(
    isp_id: str,
    rng: np.random.Generator,
    exclude: tuple[ErrorCategory, ...] = (),
) -> ErrorCategory:
    """Draw an error category from the ISP's Table 2 mix.

    ``exclude`` removes categories attributed elsewhere (dropdown
    misses and call-to-order pages carry their own categories), with
    the remaining weights renormalized; falls back to ``OTHER`` when
    the exclusion empties the mix.
    """
    mix = ERROR_MIX_BY_ISP.get(isp_id)
    if mix is None:
        raise KeyError(f"no error mix for ISP {isp_id!r}")
    categories = [c for c in mix if c not in exclude]
    if not categories:
        return ErrorCategory.OTHER
    weights = np.asarray([mix[c] for c in categories], dtype=float)
    return categories[int(rng.choice(len(categories), p=weights / weights.sum()))]
