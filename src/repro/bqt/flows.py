"""Page-flow traces: what BQT navigated to reach its answer.

The paper's Appendix 8.3 documents each ISP's query workflow as a
sequence of pages (type address → dropdown → availability page →
possible redirect → plans). The website simulators return only the
*final* page; this module reconstructs the full navigation trace for a
query — the real BQT's debugging telemetry — so error forensics like
Table 2's "where in the flow did it break" attribution can be tested,
and so campaign step counts (dropdown interactions, redirects
followed) can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import PageKind, QueryStatus

__all__ = ["FlowStep", "FlowTrace", "trace_for_record", "FlowStats"]


@dataclass(frozen=True)
class FlowStep:
    """One navigation step in a query flow."""

    action: str   # "enter_address", "select_dropdown", "read_result", …
    page: str     # what the site showed after the action

    def __str__(self) -> str:
        return f"{self.action} → {self.page}"


@dataclass(frozen=True)
class FlowTrace:
    """The navigation sequence of one (possibly retried) query."""

    isp_id: str
    address_id: str
    steps: tuple[FlowStep, ...]
    final_status: QueryStatus

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a trace needs at least one step")

    @property
    def num_steps(self) -> int:
        """Navigation steps taken."""
        return len(self.steps)

    @property
    def followed_redirect(self) -> bool:
        """Whether a second storefront was consulted."""
        return any("redirect" in step.page for step in self.steps)

    def render(self) -> str:
        """One line per step."""
        lines = [f"{self.isp_id} / {self.address_id} "
                 f"→ {self.final_status.value}"]
        lines.extend(f"  {i}. {step}" for i, step in enumerate(self.steps, 1))
        return "\n".join(lines)


# How each final outcome decomposes into the appendix's flow steps.
_COMMON_PREFIX = (
    FlowStep("open_storefront", "availability form"),
    FlowStep("enter_address", "dropdown suggestions"),
)

_OUTCOME_STEPS: dict[PageKind | str, tuple[FlowStep, ...]] = {
    "serviceable_plans": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "plans page"),
    ),
    "serviceable_subscriber": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "existing-subscriber page"),
        FlowStep("click_new_plan", "plans page"),
    ),
    "serviceable_unknown_plan": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "subscriber page without tiers"),
    ),
    "no_service": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "no-service page"),
    ),
    "address_not_found": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "address-not-found page"),
    ),
    "dropdown_miss": (
        FlowStep("select_dropdown", "no suggestion offered"),
    ),
    "call_to_order": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "call-to-order page"),
    ),
    "human_verification": (
        FlowStep("select_dropdown", "human-verification wall"),
    ),
    "error": (
        FlowStep("select_dropdown", "address resolved"),
        FlowStep("read_result", "error page"),
    ),
}

_REDIRECT_STEP = {
    "centurylink": FlowStep("follow_redirect", "redirect to brightspeed"),
    "consolidated": FlowStep("follow_redirect", "redirect to fidium"),
}


def _outcome_key(record: QueryRecord) -> str:
    if record.status is QueryStatus.SERVICEABLE:
        if not record.plans:
            return "serviceable_unknown_plan"
        return "serviceable_plans"
    if record.status is QueryStatus.NO_SERVICE:
        return "no_service"
    if record.status is QueryStatus.ADDRESS_NOT_FOUND:
        return "address_not_found"
    assert record.error_category is not None
    category = record.error_category.value
    if category == "select_dropdown":
        return "dropdown_miss"
    if category == "analyzing_result" and record.isp_id == "att":
        return "call_to_order"
    if category == "empty_traceback" and record.isp_id == "centurylink":
        return "human_verification"
    return "error"


def trace_for_record(record: QueryRecord) -> FlowTrace:
    """Reconstruct the navigation trace behind one query record.

    Retries repeat the prefix; the recorded ``attempts`` count drives
    how many times the form was re-entered.
    """
    outcome = _outcome_key(record)
    steps: list[FlowStep] = []
    for attempt in range(record.attempts - 1):
        steps.extend(_COMMON_PREFIX)
        steps.append(FlowStep("retry", "rotate exit IP and re-enter"))
    steps.extend(_COMMON_PREFIX)
    if outcome == "serviceable_plans" and record.isp_id in _REDIRECT_STEP \
            and record.max_download_mbps >= 1000 \
            and record.isp_id == "consolidated":
        steps.append(_REDIRECT_STEP["consolidated"])
    steps.extend(_OUTCOME_STEPS[outcome])
    return FlowTrace(
        isp_id=record.isp_id,
        address_id=record.address_id,
        steps=tuple(steps),
        final_status=record.status,
    )


@dataclass(frozen=True)
class FlowStats:
    """Aggregate navigation statistics for a campaign."""

    total_steps: int
    mean_steps_per_query: float
    retry_share: float
    redirect_share: float


def campaign_flow_stats(log: QueryLog) -> FlowStats:
    """Navigation statistics over a whole query log."""
    if len(log) == 0:
        raise ValueError("empty query log")
    total_steps = 0
    retried = 0
    redirected = 0
    for record in log:
        trace = trace_for_record(record)
        total_steps += trace.num_steps
        retried += record.attempts > 1
        redirected += trace.followed_redirect
    n = len(log)
    return FlowStats(
        total_steps=total_steps,
        mean_steps_per_query=total_steps / n,
        retry_share=retried / n,
        redirect_share=redirected / n,
    )
