"""The BQT query log.

Every analysis in the paper consumes the query log, not the websites:
serviceability and compliance read final statuses and plans, Table 2
reads the error taxonomy of unknown addresses, Figure 12 reads query
times, Figures 7/8 read per-CBG query and collection counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.bqt.errors import ErrorCategory
from repro.bqt.responses import QueryStatus
from repro.isp.plans import BroadbandPlan
from repro.tabular import Table

__all__ = ["QueryRecord", "QueryLog"]


@dataclass(frozen=True)
class QueryRecord:
    """The final outcome of querying one (ISP, address) pair."""

    isp_id: str
    address_id: str
    block_geoid: str
    state_abbreviation: str
    status: QueryStatus
    plans: tuple[BroadbandPlan, ...] = ()
    error_category: ErrorCategory | None = None
    attempts: int = 1
    elapsed_seconds: float = 0.0
    # Set when this address was queried as a replacement for another
    # address whose queries kept failing.
    replacement_for: str | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.elapsed_seconds < 0:
            raise ValueError("elapsed time must be non-negative")
        if self.status is QueryStatus.UNKNOWN and self.error_category is None:
            raise ValueError("unknown status requires an error category")
        if self.plans and self.status is not QueryStatus.SERVICEABLE:
            raise ValueError("only serviceable records carry plans")

    @property
    def block_group_geoid(self) -> str:
        """GEOID of the containing block group."""
        return self.block_geoid[:12]

    @property
    def max_download_mbps(self) -> float:
        """Highest guaranteed advertised download speed (0 if none)."""
        guaranteed = [p.download_mbps for p in self.plans if p.is_speed_guaranteed]
        return max(guaranteed, default=0.0)

    @property
    def best_plan(self) -> BroadbandPlan | None:
        """The fastest advertised plan, if any."""
        if not self.plans:
            return None
        return max(self.plans, key=lambda plan: plan.download_mbps)

    @property
    def tier_label(self) -> str:
        """Table 1 bucket for this record's advertised service."""
        if self.status is not QueryStatus.SERVICEABLE:
            return "0"
        if not self.plans:
            return "Unknown Plan"
        best = max(self.plans, key=lambda plan: plan.download_mbps)
        return best.tier_label


class QueryLog:
    """Append-only collection of query records with indexes."""

    def __init__(self, records: Iterable[QueryRecord] = ()):
        self._records: list[QueryRecord] = []
        self._by_isp: dict[str, list[QueryRecord]] = {}
        for record in records:
            self.append(record)

    def append(self, record: QueryRecord) -> None:
        """Add one record."""
        self._records.append(record)
        self._by_isp.setdefault(record.isp_id, []).append(record)

    def extend(self, records: Iterable[QueryRecord]) -> None:
        """Add many records."""
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def for_isp(self, isp_id: str) -> list[QueryRecord]:
        """Records for one ISP."""
        return list(self._by_isp.get(isp_id, []))

    def isps(self) -> list[str]:
        """ISPs present in the log, sorted."""
        return sorted(self._by_isp)

    def conclusive(self) -> list[QueryRecord]:
        """Records whose status answers the serviceability question."""
        return [r for r in self._records if r.status.is_conclusive]

    def unknown_counts_by_category(self, isp_id: str) -> dict[ErrorCategory, int]:
        """Table 2 row: unknown addresses per error category."""
        counts: dict[ErrorCategory, int] = {}
        for record in self._by_isp.get(isp_id, []):
            if record.status is QueryStatus.UNKNOWN:
                assert record.error_category is not None
                counts[record.error_category] = counts.get(record.error_category, 0) + 1
        return counts

    def query_times(self, isp_id: str) -> list[float]:
        """Per-address elapsed query times for one ISP (Figure 12)."""
        return [r.elapsed_seconds for r in self._by_isp.get(isp_id, [])]

    def total_virtual_seconds(self) -> float:
        """Sum of all query times — the sequential campaign duration the
        paper reasons about when it says querying every CAF address
        would take more than six months."""
        return sum(r.elapsed_seconds for r in self._records)

    def to_table(self) -> Table:
        """Flatten to a table (plans reduced to the analysis columns)."""
        rows = []
        for r in self._records:
            best = r.best_plan
            rows.append({
                "isp_id": r.isp_id,
                "address_id": r.address_id,
                "block_geoid": r.block_geoid,
                "block_group_geoid": r.block_group_geoid,
                "state_abbreviation": r.state_abbreviation,
                "status": r.status.value,
                "error_category": r.error_category.value if r.error_category else "",
                "attempts": r.attempts,
                "elapsed_seconds": r.elapsed_seconds,
                "max_download_mbps": r.max_download_mbps,
                "tier_label": r.tier_label,
                "best_plan_price_usd": best.monthly_price_usd if best else float("nan"),
                "num_plans": len(r.plans),
                "is_replacement": r.replacement_for is not None,
            })
        return Table.from_rows(rows)
