"""The rotating proxy pool.

The paper routes BQT through The Bright Initiative's pool of data-center
and residential IPs so ISP websites see queries "originating from a
geographically diverse pool of IP addresses", and rotates IPs when
bot-detection interferes. The simulation keeps the operationally
relevant behaviour: endpoints accumulate *suspicion* as they issue
queries (more so on bot-hostile sites), suspicious endpoints raise the
error probability of attempts made through them, and rotation resets
the engine to a fresh endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.distributions import stable_rng

__all__ = ["ProxyEndpoint", "ProxyPool"]


@dataclass
class ProxyEndpoint:
    """One exit IP from the pool."""

    endpoint_id: str
    kind: str  # "residential" or "datacenter"
    queries_issued: int = 0
    suspicion: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("residential", "datacenter"):
            raise ValueError(f"unknown endpoint kind {self.kind!r}")

    def record_query(self, bot_hostility: float) -> None:
        """Account one query; data-center IPs attract suspicion faster."""
        if not 0.0 <= bot_hostility <= 1.0:
            raise ValueError("bot_hostility must be in [0, 1]")
        self.queries_issued += 1
        multiplier = 1.0 if self.kind == "residential" else 2.5
        self.suspicion = min(1.0, self.suspicion + 0.002 * multiplier * bot_hostility)

    @property
    def extra_error_probability(self) -> float:
        """Added failure probability when querying through this IP."""
        return 0.3 * self.suspicion


class ProxyPool:
    """A finite pool of endpoints with round-robin-with-reuse rotation."""

    def __init__(self, size: int = 64, residential_fraction: float = 0.7,
                 seed: int = 0):
        if size <= 0:
            raise ValueError("pool size must be positive")
        if not 0.0 <= residential_fraction <= 1.0:
            raise ValueError("residential_fraction must be in [0, 1]")
        rng = stable_rng(seed, "proxy-pool")
        self._endpoints = [
            ProxyEndpoint(
                endpoint_id=f"ip-{index:04d}",
                kind=("residential" if rng.random() < residential_fraction
                      else "datacenter"),
            )
            for index in range(size)
        ]
        self._cursor = 0
        self.rotations = 0

    def __len__(self) -> int:
        return len(self._endpoints)

    @property
    def current(self) -> ProxyEndpoint:
        """The endpoint queries are currently routed through."""
        return self._endpoints[self._cursor]

    def rotate(self) -> ProxyEndpoint:
        """Move to the next endpoint (wraps; suspicion persists, as it
        does for a real pool within one collection campaign)."""
        self._cursor = (self._cursor + 1) % len(self._endpoints)
        self.rotations += 1
        return self.current

    def least_suspicious(self) -> ProxyEndpoint:
        """Jump to the cleanest endpoint (used after repeated failures)."""
        best_index = min(range(len(self._endpoints)),
                         key=lambda i: self._endpoints[i].suspicion)
        self._cursor = best_index
        return self.current

    def mean_suspicion(self) -> float:
        """Pool-wide average suspicion (observability hook)."""
        return sum(e.suspicion for e in self._endpoints) / len(self._endpoints)
