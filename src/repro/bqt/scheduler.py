"""Worker scheduling: from a query log to campaign wall-clock.

The real BQT ran "many Docker containers" in parallel, each driving one
browser session. Given the per-address query times a campaign actually
produced (the log), this module schedules those queries onto a worker
fleet and reports the resulting wall-clock — the empirical counterpart
of :mod:`repro.bqt.campaign`'s closed-form arithmetic.

Scheduling is per-ISP (a container binds to one ISP workflow) with the
politeness cap on concurrent sessions per storefront, using the
longest-processing-time-first heuristic (LPT is within 4/3 of the
optimal makespan for identical machines, which is more than accurate
enough for capacity planning).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP, SECONDS_PER_DAY
from repro.bqt.logbook import QueryLog

__all__ = ["WorkerSchedule", "schedule_campaign"]


@dataclass(frozen=True)
class WorkerSchedule:
    """The outcome of scheduling one campaign onto a worker fleet."""

    per_isp_makespan_days: Mapping[str, float]
    per_isp_workers: Mapping[str, int]
    total_query_seconds: float

    @property
    def wall_clock_days(self) -> float:
        """ISP fleets run concurrently; the slowest sets the campaign."""
        return max(self.per_isp_makespan_days.values())

    @property
    def utilization(self) -> float:
        """Busy time over allocated fleet time (1.0 = perfectly packed)."""
        allocated = sum(
            self.per_isp_makespan_days[isp] * SECONDS_PER_DAY * workers
            for isp, workers in self.per_isp_workers.items()
        )
        if allocated == 0:
            return 1.0
        return self.total_query_seconds / allocated

    def render(self) -> str:
        """Human-readable schedule summary."""
        lines = [f"campaign wall clock: {self.wall_clock_days:.2f} days "
                 f"(fleet utilization {self.utilization:.0%})"]
        for isp in sorted(self.per_isp_makespan_days):
            lines.append(
                f"  {isp}: {self.per_isp_workers[isp]} workers, "
                f"{self.per_isp_makespan_days[isp]:.2f} days")
        return "\n".join(lines)


def _lpt_makespan_seconds(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first makespan on identical workers."""
    if workers <= 0:
        raise ValueError("need at least one worker")
    if not durations:
        return 0.0
    loads = [0.0] * min(workers, len(durations))
    heapq.heapify(loads)
    for duration in sorted(durations, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads)


def schedule_campaign(
    log: QueryLog,
    workers_per_isp: int | Mapping[str, int] = MAX_POLITE_WORKERS_PER_ISP,
) -> WorkerSchedule:
    """Schedule a campaign's queries onto per-ISP worker fleets."""
    isps = log.isps()
    if not isps:
        raise ValueError("empty query log")
    if isinstance(workers_per_isp, int):
        workers_map = {isp: workers_per_isp for isp in isps}
    else:
        workers_map = {isp: workers_per_isp.get(isp, 1) for isp in isps}
    for isp, workers in workers_map.items():
        if workers < 1:
            raise ValueError(f"{isp} needs at least one worker")
        if workers > MAX_POLITE_WORKERS_PER_ISP:
            raise ValueError(
                f"{workers} workers against {isp} exceeds the politeness "
                f"cap of {MAX_POLITE_WORKERS_PER_ISP}")
    makespans = {}
    total_seconds = 0.0
    for isp in isps:
        durations = log.query_times(isp)
        total_seconds += sum(durations)
        makespans[isp] = _lpt_makespan_seconds(
            durations, workers_map[isp]) / SECONDS_PER_DAY
    return WorkerSchedule(
        per_isp_makespan_days=makespans,
        per_isp_workers=workers_map,
        total_query_seconds=total_seconds,
    )
