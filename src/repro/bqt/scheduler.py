"""Worker scheduling: from a query log to campaign wall-clock.

The real BQT ran "many Docker containers" in parallel, each driving one
browser session. Given the per-address query times a campaign actually
produced (the log), this module schedules those queries onto a worker
fleet and reports the resulting wall-clock — the empirical counterpart
of :mod:`repro.bqt.campaign`'s closed-form arithmetic.

Scheduling is per-ISP (a container binds to one ISP workflow) with the
politeness cap on concurrent sessions per storefront, using the
longest-processing-time-first heuristic (LPT is within 4/3 of the
optimal makespan for identical machines, which is more than accurate
enough for capacity planning).

:func:`schedule_interleaved_campaign` models the asyncio engine
(:mod:`repro.bqt.aio`) instead: event-loop workers that are *not*
bound to one ISP but interleave up to ``max_inflight`` sessions across
storefronts, still under the per-ISP cap. A dedicated fleet idles
whenever its own ISP's queue drains; an interleaved loop backfills the
wait with another storefront's session, so the same politeness budget
buys a shorter campaign and higher utilization.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP, SECONDS_PER_DAY
from repro.bqt.logbook import QueryLog

__all__ = [
    "InterleavedSchedule",
    "WorkerSchedule",
    "plan_to_target",
    "schedule_campaign",
    "schedule_interleaved_campaign",
]


@dataclass(frozen=True)
class WorkerSchedule:
    """The outcome of scheduling one campaign onto a worker fleet."""

    per_isp_makespan_days: Mapping[str, float]
    per_isp_workers: Mapping[str, int]
    total_query_seconds: float

    @property
    def wall_clock_days(self) -> float:
        """ISP fleets run concurrently; the slowest sets the campaign."""
        return max(self.per_isp_makespan_days.values())

    @property
    def utilization(self) -> float:
        """Busy time over allocated fleet time (1.0 = perfectly packed)."""
        allocated = sum(
            self.per_isp_makespan_days[isp] * SECONDS_PER_DAY * workers
            for isp, workers in self.per_isp_workers.items()
        )
        if allocated == 0:
            return 1.0
        return self.total_query_seconds / allocated

    def render(self) -> str:
        """Human-readable schedule summary."""
        lines = [f"campaign wall clock: {self.wall_clock_days:.2f} days "
                 f"(fleet utilization {self.utilization:.0%})"]
        for isp in sorted(self.per_isp_makespan_days):
            lines.append(
                f"  {isp}: {self.per_isp_workers[isp]} workers, "
                f"{self.per_isp_makespan_days[isp]:.2f} days")
        return "\n".join(lines)


def _lpt_makespan_seconds(durations: list[float], workers: int) -> float:
    """Longest-processing-time-first makespan on identical workers."""
    if workers <= 0:
        raise ValueError("need at least one worker")
    if not durations:
        return 0.0
    loads = [0.0] * min(workers, len(durations))
    heapq.heapify(loads)
    for duration in sorted(durations, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads)


@dataclass(frozen=True)
class InterleavedSchedule:
    """The outcome of scheduling a campaign onto interleaving loops.

    ``loops × max_inflight`` session slots serve every storefront's
    queue, but no storefront ever sees more than ``per_isp_cap``
    concurrent sessions. The wall clock is the larger of the two
    binding constraints: the pooled capacity bound (all slots busy)
    and the slowest single storefront at its politeness cap.
    """

    loops: int
    max_inflight: int
    per_isp_cap: int
    per_isp_makespan_days: Mapping[str, float]
    total_query_seconds: float

    @property
    def slots(self) -> int:
        """Total concurrent session slots across the loop fleet."""
        return self.loops * self.max_inflight

    @property
    def wall_clock_days(self) -> float:
        """Max of the capacity bound and the per-ISP politeness bound."""
        capacity_days = self.total_query_seconds / self.slots / SECONDS_PER_DAY
        return max(capacity_days, max(self.per_isp_makespan_days.values()))

    @property
    def utilization(self) -> float:
        """Busy time over allocated slot time (1.0 = perfectly packed)."""
        allocated = self.wall_clock_days * SECONDS_PER_DAY * self.slots
        if allocated == 0:
            return 1.0
        return self.total_query_seconds / allocated

    def render(self) -> str:
        """Human-readable schedule summary."""
        lines = [
            f"campaign wall clock: {self.wall_clock_days:.2f} days "
            f"({self.loops} loops x {self.max_inflight} in-flight, "
            f"utilization {self.utilization:.0%})"
        ]
        for isp in sorted(self.per_isp_makespan_days):
            lines.append(
                f"  {isp}: cap {self.per_isp_cap}, politeness-bound "
                f"{self.per_isp_makespan_days[isp]:.2f} days")
        return "\n".join(lines)


def schedule_campaign(
    log: QueryLog,
    workers_per_isp: int | Mapping[str, int] = MAX_POLITE_WORKERS_PER_ISP,
) -> WorkerSchedule:
    """Schedule a campaign's queries onto per-ISP worker fleets."""
    isps = log.isps()
    if not isps:
        raise ValueError("empty query log")
    if isinstance(workers_per_isp, int):
        workers_map = {isp: workers_per_isp for isp in isps}
    else:
        workers_map = {isp: workers_per_isp.get(isp, 1) for isp in isps}
    for isp, workers in workers_map.items():
        if workers < 1:
            raise ValueError(f"{isp} needs at least one worker")
        if workers > MAX_POLITE_WORKERS_PER_ISP:
            raise ValueError(
                f"{workers} workers against {isp} exceeds the politeness "
                f"cap of {MAX_POLITE_WORKERS_PER_ISP}")
    makespans = {}
    total_seconds = 0.0
    for isp in isps:
        durations = log.query_times(isp)
        total_seconds += sum(durations)
        makespans[isp] = _lpt_makespan_seconds(
            durations, workers_map[isp]) / SECONDS_PER_DAY
    return WorkerSchedule(
        per_isp_makespan_days=makespans,
        per_isp_workers=workers_map,
        total_query_seconds=total_seconds,
    )


def schedule_interleaved_campaign(
    log: QueryLog,
    loops: int = 1,
    max_inflight: int = 8,
    per_isp_cap: int = MAX_POLITE_WORKERS_PER_ISP,
) -> InterleavedSchedule:
    """Schedule a campaign onto ``loops`` interleaving event loops.

    Each loop holds at most ``max_inflight`` sessions, and each
    storefront at most ``per_isp_cap`` across all loops (the politeness
    constraint the :class:`~repro.bqt.aio.PolitenessGate` enforces at
    runtime). Per-ISP makespans are LPT at the storefront's effective
    concurrency ``min(per_isp_cap, slots)``; the campaign wall clock
    additionally respects the pooled slot capacity.
    """
    if loops < 1:
        raise ValueError("need at least one event loop")
    if max_inflight < 1:
        raise ValueError("max_inflight must be at least 1")
    if per_isp_cap < 1:
        raise ValueError("per_isp_cap must be at least 1")
    if per_isp_cap > MAX_POLITE_WORKERS_PER_ISP:
        raise ValueError(
            f"per_isp_cap {per_isp_cap} exceeds the politeness cap of "
            f"{MAX_POLITE_WORKERS_PER_ISP}")
    isps = log.isps()
    if not isps:
        raise ValueError("empty query log")
    slots = loops * max_inflight
    makespans = {}
    total_seconds = 0.0
    for isp in isps:
        durations = log.query_times(isp)
        total_seconds += sum(durations)
        makespans[isp] = _lpt_makespan_seconds(
            durations, min(per_isp_cap, slots)) / SECONDS_PER_DAY
    return InterleavedSchedule(
        loops=loops,
        max_inflight=max_inflight,
        per_isp_cap=per_isp_cap,
        per_isp_makespan_days=makespans,
        total_query_seconds=total_seconds,
    )


def plan_to_target(
    log: QueryLog,
    target_seconds: float,
    max_loops: int = MAX_POLITE_WORKERS_PER_ISP,
    max_inflight_ceiling: int = 32,
    per_isp_cap: int = MAX_POLITE_WORKERS_PER_ISP,
    cap_for_loops: "Callable[[int], int] | None" = None,
) -> InterleavedSchedule:
    """Smallest interleaving fleet predicted to meet a wall-clock target.

    Enumerates candidate ``(loops, max_inflight)`` fleets (in-flight
    bounds grow in powers of two up to ``max_inflight_ceiling``),
    prices each with :func:`schedule_interleaved_campaign`, and returns
    the cheapest schedule — fewest total session slots, then fewest
    loops — whose predicted wall clock is at most ``target_seconds``.
    When no candidate meets the target (the politeness cap bounds how
    fast any fleet can go), the fastest schedule is returned instead;
    callers can compare ``wall_clock_days`` against the target to see
    which case they got.

    ``cap_for_loops`` (when given) maps a candidate's loop count to
    the fleet-wide per-ISP concurrency that fleet can actually
    achieve, overriding ``per_isp_cap``. The distributed executor
    floor-divides the politeness cap across workers, so a 3-worker
    fleet reaches only ``3 * (cap // 3)`` concurrent sessions per
    storefront — pricing candidates with the undivided cap would
    overpromise.
    """
    if target_seconds <= 0:
        raise ValueError("target_seconds must be positive")
    if max_loops < 1:
        raise ValueError("need at least one event loop")
    if max_inflight_ceiling < 1:
        raise ValueError("max_inflight_ceiling must be at least 1")
    inflight_options = []
    bound = 1
    while bound <= max_inflight_ceiling:
        inflight_options.append(bound)
        bound *= 2
    candidates = [
        schedule_interleaved_campaign(
            log, loops=loops, max_inflight=max_inflight,
            per_isp_cap=(per_isp_cap if cap_for_loops is None
                         else cap_for_loops(loops)))
        for loops in range(1, max_loops + 1)
        for max_inflight in inflight_options
    ]
    feasible = [
        schedule for schedule in candidates
        if schedule.wall_clock_days * SECONDS_PER_DAY <= target_seconds
    ]
    if feasible:
        return min(feasible, key=lambda s: (s.slots, s.loops, s.max_inflight))
    return min(candidates,
               key=lambda s: (s.wall_clock_days, s.slots, s.loops))
