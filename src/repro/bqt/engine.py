"""The BQT query engine.

Drives website simulators the way the real BQT drives browsers: issue
an attempt through the current proxy endpoint, interpret the page,
retry transient failures with IP rotation, and log a final
:class:`~repro.bqt.logbook.QueryRecord`. Query times follow a per-ISP
lognormal calibrated to Figure 12 (AT&T slowest and widest because of
its bot-detection friction). Time is *virtual* — accumulated, never
slept — so a 537k-address campaign that took the authors months runs
here in seconds while preserving the duration arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.addresses.models import StreetAddress
from repro.bqt.errors import ErrorCategory, sample_error_category
from repro.bqt.logbook import QueryRecord
from repro.bqt.proxy import ProxyPool
from repro.bqt.responses import PageKind, QueryStatus, WebsiteResponse
from repro.bqt.websites import CenturyLinkWebsite, IspWebsite
from repro.isp.registry import isp_by_id
from repro.stats.distributions import stable_rng

__all__ = ["EngineConfig", "BqtEngine"]

# Page kinds that terminate the retry loop immediately.
_CONCLUSIVE_PAGES = {
    PageKind.PLANS_PAGE,
    PageKind.EXISTING_SUBSCRIBER_PAGE,
    PageKind.UNKNOWN_PLAN_PAGE,
    PageKind.REDIRECT_FIDIUM,
    PageKind.NO_SERVICE_PAGE,
    PageKind.ADDRESS_NOT_FOUND,
    PageKind.CALL_TO_ORDER,
}

# Error category to report when retries exhaust on a given page kind.
_PAGE_ERROR_CATEGORY = {
    PageKind.DROPDOWN_MISS: ErrorCategory.SELECT_DROPDOWN,
    PageKind.HUMAN_VERIFICATION: ErrorCategory.EMPTY_TRACEBACK,
    PageKind.CALL_TO_ORDER: ErrorCategory.ANALYZING_RESULT,
}


@dataclass(frozen=True)
class EngineConfig:
    """Retry and pacing policy for a collection campaign."""

    max_attempts: int = 3
    rotate_proxy_on_failure: bool = True
    # Seconds of back-off added per retry (virtual time).
    retry_backoff_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")


class BqtEngine:
    """Queries one ISP's website for street addresses."""

    def __init__(
        self,
        website: IspWebsite,
        proxy_pool: ProxyPool | None = None,
        config: EngineConfig | None = None,
        seed: int = 0,
    ):
        self._website = website
        self._pool = proxy_pool or ProxyPool(seed=seed)
        self._config = config or EngineConfig()
        self._seed = seed
        self._info = isp_by_id(website.isp_id)

    @property
    def isp_id(self) -> str:
        """The ISP this engine queries."""
        return self._website.isp_id

    @property
    def proxy_pool(self) -> ProxyPool:
        """The proxy pool in use."""
        return self._pool

    # ------------------------------------------------------------------
    def _draw_query_seconds(self, rng: np.random.Generator) -> float:
        """One attempt's duration from the per-ISP Figure 12 model."""
        median = self._info.median_query_seconds
        sigma = self._info.query_time_sigma
        return float(rng.lognormal(mean=np.log(median), sigma=sigma))

    def query(self, address: StreetAddress) -> QueryRecord:
        """Query one address to a final status."""
        rng = stable_rng(self._seed, "engine", self.isp_id, address.address_id)
        elapsed = 0.0
        last_response: WebsiteResponse | None = None
        for attempt in range(1, self._config.max_attempts + 1):
            endpoint = self._pool.current
            endpoint.record_query(self._website.bot_hostility)
            elapsed += self._draw_query_seconds(rng)
            response = self._website.respond(
                address, rng, extra_error_probability=endpoint.extra_error_probability
            )
            if response.page_kind is PageKind.REDIRECT_BRIGHTSPEED:
                # Second storefront: query brightspeed.com with the
                # same address (Appendix 8.3).
                assert isinstance(self._website, CenturyLinkWebsite)
                elapsed += self._draw_query_seconds(rng)
                response = self._website.respond_brightspeed(address, rng)
            last_response = response
            if response.page_kind in _CONCLUSIVE_PAGES:
                return self._finalize(address, response, attempt, elapsed)
            # Transient failure: rotate the exit IP and back off.
            if self._config.rotate_proxy_on_failure:
                self._pool.rotate()
            elapsed += self._config.retry_backoff_seconds
        assert last_response is not None
        return self._finalize(
            address, last_response, self._config.max_attempts, elapsed
        )

    def query_many(self, addresses: list[StreetAddress]) -> list[QueryRecord]:
        """Query a batch sequentially."""
        return [self.query(address) for address in addresses]

    # ------------------------------------------------------------------
    def _finalize(
        self,
        address: StreetAddress,
        response: WebsiteResponse,
        attempts: int,
        elapsed: float,
    ) -> QueryRecord:
        base = dict(
            isp_id=self.isp_id,
            address_id=address.address_id,
            block_geoid=address.block_geoid,
            state_abbreviation=address.state_abbreviation,
            attempts=attempts,
            elapsed_seconds=elapsed,
        )
        if response.indicates_service:
            return QueryRecord(
                status=QueryStatus.SERVICEABLE, plans=response.plans, **base
            )
        if response.page_kind is PageKind.NO_SERVICE_PAGE:
            return QueryRecord(status=QueryStatus.NO_SERVICE, **base)
        if response.page_kind is PageKind.ADDRESS_NOT_FOUND:
            return QueryRecord(status=QueryStatus.ADDRESS_NOT_FOUND, **base)
        category = _PAGE_ERROR_CATEGORY.get(response.page_kind)
        if category is None:
            # ERROR_PAGE: attribute per the ISP's Table 2 traceback mix,
            # excluding categories that carry their own page kinds.
            rng = stable_rng(self._seed, "errcat", self.isp_id, address.address_id)
            category = sample_error_category(
                self.isp_id, rng,
                exclude=(ErrorCategory.SELECT_DROPDOWN,
                         ErrorCategory.ANALYZING_RESULT),
            )
        return QueryRecord(status=QueryStatus.UNKNOWN, error_category=category, **base)
