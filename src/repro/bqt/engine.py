"""The BQT query engine.

Drives website simulators the way the real BQT drives browsers: issue
an attempt through the current proxy endpoint, interpret the page,
retry transient failures with IP rotation, and log a final
:class:`~repro.bqt.logbook.QueryRecord`. Query times follow a per-ISP
lognormal calibrated to Figure 12 (AT&T slowest and widest because of
its bot-detection friction). Time is *virtual* — accumulated, never
slept — so a 537k-address campaign that took the authors months runs
here in seconds while preserving the duration arithmetic.

One query is a resumable state machine, :class:`QuerySession`: each
:meth:`~QuerySession.step` performs one attempt (page load, optional
Brightspeed follow-up, rotation and back-off on transient failure) and
pauses. The synchronous :meth:`BqtEngine.query` steps a session to
completion in a tight loop; the asyncio driver in :mod:`repro.bqt.aio`
steps many sessions against *different* storefronts from one event
loop, yielding between attempts. Both drivers consume the same RNG
stream in the same order, so the final record is identical either way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.addresses.models import StreetAddress
from repro.bqt.errors import ErrorCategory, sample_error_category
from repro.bqt.logbook import QueryRecord
from repro.bqt.proxy import ProxyPool
from repro.bqt.responses import PageKind, QueryStatus, WebsiteResponse
from repro.bqt.websites import CenturyLinkWebsite, IspWebsite
from repro.isp.registry import isp_by_id
from repro.obs.metrics import REGISTRY as _METRICS
from repro.stats.distributions import stable_rng

__all__ = ["EngineConfig", "BqtEngine", "QuerySession"]

# Page kinds that terminate the retry loop immediately.
_CONCLUSIVE_PAGES = {
    PageKind.PLANS_PAGE,
    PageKind.EXISTING_SUBSCRIBER_PAGE,
    PageKind.UNKNOWN_PLAN_PAGE,
    PageKind.REDIRECT_FIDIUM,
    PageKind.NO_SERVICE_PAGE,
    PageKind.ADDRESS_NOT_FOUND,
    PageKind.CALL_TO_ORDER,
}

# Error category to report when retries exhaust on a given page kind.
_PAGE_ERROR_CATEGORY = {
    PageKind.DROPDOWN_MISS: ErrorCategory.SELECT_DROPDOWN,
    PageKind.HUMAN_VERIFICATION: ErrorCategory.EMPTY_TRACEBACK,
    PageKind.CALL_TO_ORDER: ErrorCategory.ANALYZING_RESULT,
}


@dataclass(frozen=True)
class EngineConfig:
    """Retry and pacing policy for a collection campaign.

    ``pace`` is the real-time pacing driver: wall-clock seconds slept
    per *virtual* second a step accrues (0.0, the default, keeps time
    purely virtual; 1.0 rehearses a campaign wall-clock-faithfully;
    0.01 rehearses it at 100x). Pacing never touches the RNG stream
    or the records — the drivers sleep *after* each attempt's draws,
    so a paced campaign is byte-identical to an unpaced one, just
    slower. The sleeping lives in the drivers (:meth:`BqtEngine
    .query` blocks; :func:`repro.bqt.aio.query_async` awaits), never
    in :meth:`QuerySession.step`, so pacing cannot stall an event
    loop's other storefront sessions.
    """

    max_attempts: int = 3
    rotate_proxy_on_failure: bool = True
    # Seconds of back-off added per retry (virtual time).
    retry_backoff_seconds: float = 5.0
    # Wall seconds slept per virtual second (0 = never sleep).
    pace: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.retry_backoff_seconds < 0:
            raise ValueError("backoff must be non-negative")
        if self.pace < 0:
            raise ValueError("pace must be non-negative")


class QuerySession:
    """One address's query, as a resumable state machine.

    The session owns the per-address RNG stream (derived from the world
    seed, never from wall clock or execution order) and the accumulated
    virtual elapsed time. Each :meth:`step` runs exactly one attempt —
    the unit the real BQT pauses at between page loads — and either
    finishes the session (:attr:`done` becomes true, :attr:`record`
    holds the final :class:`~repro.bqt.logbook.QueryRecord`) or leaves
    it resumable. Because every random draw happens inside ``step`` in
    a fixed order, interleaving steps of sessions against *different*
    engines cannot change any session's outcome; sessions sharing one
    engine still hand state to each other through the proxy pool and
    must run in order.
    """

    def __init__(self, engine: "BqtEngine", address: StreetAddress):
        self._engine = engine
        self._address = address
        self._rng = stable_rng(
            engine._seed, "engine", engine.isp_id, address.address_id)
        self._attempt = 0
        self._elapsed = 0.0
        self._record: QueryRecord | None = None

    @property
    def address(self) -> StreetAddress:
        """The address this session queries."""
        return self._address

    @property
    def isp_id(self) -> str:
        """The storefront this session runs against."""
        return self._engine.isp_id

    @property
    def done(self) -> bool:
        """Whether the session reached a final record."""
        return self._record is not None

    @property
    def record(self) -> QueryRecord:
        """The final record (only after :attr:`done`)."""
        if self._record is None:
            raise RuntimeError("session still in flight; step it to done")
        return self._record

    @property
    def attempts(self) -> int:
        """Attempts issued so far."""
        return self._attempt

    @property
    def elapsed_seconds(self) -> float:
        """Virtual seconds accumulated so far."""
        return self._elapsed

    def step(self) -> float:
        """Run the next attempt; returns the virtual seconds it took.

        Reproduces one iteration of the classic blocking retry loop:
        account the query on the current exit IP, load the page,
        follow a Brightspeed redirect on the same attempt, then either
        finalize (conclusive page, or retries exhausted) or rotate the
        proxy and back off.
        """
        if self.done:
            raise RuntimeError("session already finished")
        engine = self._engine
        config = engine._config
        before = self._elapsed
        self._attempt += 1
        endpoint = engine._pool.current
        endpoint.record_query(engine._website.bot_hostility)
        self._elapsed += engine._draw_query_seconds(self._rng)
        response = engine._website.respond(
            self._address, self._rng,
            extra_error_probability=endpoint.extra_error_probability,
        )
        if response.page_kind is PageKind.REDIRECT_BRIGHTSPEED:
            # Second storefront: query brightspeed.com with the
            # same address (Appendix 8.3).
            assert isinstance(engine._website, CenturyLinkWebsite)
            self._elapsed += engine._draw_query_seconds(self._rng)
            response = engine._website.respond_brightspeed(
                self._address, self._rng)
        if response.page_kind in _CONCLUSIVE_PAGES:
            self._record = engine._finalize(
                self._address, response, self._attempt, self._elapsed)
            return self._elapsed - before
        # Transient failure: rotate the exit IP and back off.
        if config.rotate_proxy_on_failure:
            engine._pool.rotate()
        self._elapsed += config.retry_backoff_seconds
        if self._attempt >= config.max_attempts:
            self._record = engine._finalize(
                self._address, response, config.max_attempts, self._elapsed)
        return self._elapsed - before


class BqtEngine:
    """Queries one ISP's website for street addresses."""

    def __init__(
        self,
        website: IspWebsite,
        proxy_pool: ProxyPool | None = None,
        config: EngineConfig | None = None,
        seed: int = 0,
    ):
        self._website = website
        self._pool = proxy_pool or ProxyPool(seed=seed)
        self._config = config or EngineConfig()
        self._seed = seed
        self._info = isp_by_id(website.isp_id)

    @property
    def isp_id(self) -> str:
        """The ISP this engine queries."""
        return self._website.isp_id

    @property
    def proxy_pool(self) -> ProxyPool:
        """The proxy pool in use."""
        return self._pool

    # ------------------------------------------------------------------
    def _draw_query_seconds(self, rng: np.random.Generator) -> float:
        """One attempt's duration from the per-ISP Figure 12 model."""
        median = self._info.median_query_seconds
        sigma = self._info.query_time_sigma
        return float(rng.lognormal(mean=np.log(median), sigma=sigma))

    def begin(self, address: StreetAddress) -> QuerySession:
        """Open a resumable session for one address."""
        # Sidecar count only; the session's record bytes are untouched.
        _METRICS.counter("bqt_sessions_total",
                         isp=self._website.isp_id).inc()
        return QuerySession(self, address)

    def query(self, address: StreetAddress) -> QueryRecord:
        """Query one address to a final status, pacing if configured."""
        session = self.begin(address)
        pace = self._config.pace
        while not session.done:
            took = session.step()
            if pace > 0 and took > 0:
                time.sleep(took * pace)
        return session.record

    def query_many(self, addresses: list[StreetAddress]) -> list[QueryRecord]:
        """Query a batch sequentially."""
        return [self.query(address) for address in addresses]

    # ------------------------------------------------------------------
    def _finalize(
        self,
        address: StreetAddress,
        response: WebsiteResponse,
        attempts: int,
        elapsed: float,
    ) -> QueryRecord:
        base = dict(
            isp_id=self.isp_id,
            address_id=address.address_id,
            block_geoid=address.block_geoid,
            state_abbreviation=address.state_abbreviation,
            attempts=attempts,
            elapsed_seconds=elapsed,
        )
        if response.indicates_service:
            return QueryRecord(
                status=QueryStatus.SERVICEABLE, plans=response.plans, **base
            )
        if response.page_kind is PageKind.NO_SERVICE_PAGE:
            return QueryRecord(status=QueryStatus.NO_SERVICE, **base)
        if response.page_kind is PageKind.ADDRESS_NOT_FOUND:
            return QueryRecord(status=QueryStatus.ADDRESS_NOT_FOUND, **base)
        category = _PAGE_ERROR_CATEGORY.get(response.page_kind)
        if category is None:
            # ERROR_PAGE: attribute per the ISP's Table 2 traceback mix,
            # excluding categories that carry their own page kinds.
            rng = stable_rng(self._seed, "errcat", self.isp_id, address.address_id)
            category = sample_error_category(
                self.isp_id, rng,
                exclude=(ErrorCategory.SELECT_DROPDOWN,
                         ErrorCategory.ANALYZING_RESULT),
            )
        return QueryRecord(status=QueryStatus.UNKNOWN, error_category=category, **base)
