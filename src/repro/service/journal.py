"""The campaign journal: an append-only, hash-chained event log.

The always-on service (:mod:`repro.service.daemon`) records every
lifecycle event — submission accepted, campaign planned, shard
completed, wave sealed, job finished — as one entry in this journal,
and *nothing else is the coordinator's durable state*. Restart or
crash recovery is :meth:`Journal.replay`: fold the verified entries
into a :class:`CoordinatorState`, deterministically. "State = a
replayable log" subsumes the checkpoint store's manifest healing —
a ``shard-completed`` entry carries the shard's full checkpoint
payload, so the journal *is* the checkpoint (the equivalence harness
proves ``replay()`` after a SIGKILL reconstructs the same completed-
shard state as :class:`~repro.runtime.checkpoint.CheckpointStore`'s
resume path, byte for byte).

**Hash chain.** Each entry binds its predecessor: entry *n* stores
``prev`` (entry *n-1*'s digest, or 64 zeros at genesis) and its own
``digest = content_digest({"event", "prev", "seq"})`` — the same
canonical-JSON SHA-256 idiom every store here shares, and the MABS
stream-authentication shape: a follower that verifies the chain has
verified the whole feed, not just individual frames. Two journals
agree iff their tip digests agree.

**Durability.** Entries append to ``segment-<firstseq>.jsonl`` files
(one canonical-JSON line each, flushed and fsynced per append — a WAL,
not a rename-per-entry store, so appends stay O(1)). Segments rotate
at a fixed entry count so no single file grows unbounded. On open the
chain is verified from genesis:

* a *torn tail* — damage at the very end of the last segment, the
  signature of a writer killed mid-append — is truncated back to the
  last verifiable entry, exactly the recovery the checkpoint store's
  manifest healing used to do;
* damage with verified-looking data *after* it (mid-file corruption,
  a chain break, bit rot) is **quarantined**: the damaged remainder
  moves to a ``*.quarantine`` sibling for post-mortem and the journal
  resumes from the last verified entry — suffix entries whose ``prev``
  no longer links are unverifiable by construction, so replaying them
  would be serving unauthenticated state.

The journal is the third client of
:class:`~repro.runtime.storebase.FingerprintNamespacedStore`: journals
for different services can share a root directory without clobbering
each other, and foreign-fingerprint files are never touched.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import REGISTRY as _METRICS
from repro.runtime.atomicio import atomic_write_bytes
from repro.runtime.cache import content_digest
from repro.runtime.storebase import FingerprintNamespacedStore

__all__ = [
    "CoordinatorState",
    "GENESIS_DIGEST",
    "Journal",
    "JournalEntry",
    "JournalError",
    "JobState",
    "entry_digest",
    "service_fingerprint",
]

FORMAT_VERSION = 1

# The chain's root: entry 0 links to this instead of a predecessor.
GENESIS_DIGEST = "0" * 64

# Entries per segment file before rotating to a fresh one.
SEGMENT_ENTRIES = 1024

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"
_QUARANTINE_SUFFIX = ".quarantine"

# Job statuses replay() assigns, in lifecycle order.
_TERMINAL_STATUSES = ("completed", "failed")


class JournalError(RuntimeError):
    """An entry failed verification (digest, chain link, or sequence)."""


def service_fingerprint(name: str) -> str:
    """Content fingerprint namespacing one service's journal.

    Keyed by the service *name* alone: the journal must survive every
    restart of the same logical service, whatever campaigns it runs.
    """
    return content_digest({"format": FORMAT_VERSION,
                           "kind": "service-journal",
                           "service": name})


def entry_digest(seq: int, prev: str, event: dict) -> str:
    """The digest one entry commits to: its event, link, and position.

    Folding ``seq`` and ``prev`` into the digest is what makes the
    chain positional — an attacker (or a bug) cannot reorder, drop, or
    splice verified entries without the tip digest changing.
    """
    return content_digest({"event": event, "prev": prev, "seq": seq})


@dataclass(frozen=True)
class JournalEntry:
    """One verified journal entry."""

    seq: int
    prev: str
    digest: str
    event: dict

    def to_json(self) -> dict:
        return {"digest": self.digest, "event": self.event,
                "prev": self.prev, "seq": self.seq}

    @classmethod
    def from_json(cls, data: dict) -> "JournalEntry":
        """Decode and *verify* one entry; raises :class:`JournalError`.

        Verification here is self-consistency (the digest matches the
        entry's own content); chain linkage against the predecessor is
        the caller's check.
        """
        if not isinstance(data, dict):
            raise JournalError("journal entry must be a JSON object")
        seq, prev, digest, event = (data.get("seq"), data.get("prev"),
                                    data.get("digest"), data.get("event"))
        if (not isinstance(seq, int) or isinstance(seq, bool) or seq < 0
                or not isinstance(prev, str)
                or not isinstance(digest, str)
                or not isinstance(event, dict)):
            raise JournalError("journal entry is structurally invalid")
        if entry_digest(seq, prev, event) != digest:
            raise JournalError(
                f"entry {seq} digest does not match its content")
        return cls(seq=seq, prev=prev, digest=digest, event=event)


# ----------------------------------------------------------------------
# Replayed coordinator state
# ----------------------------------------------------------------------

@dataclass
class JobState:
    """One submitted job's replayed lifecycle."""

    job_id: str
    kind: str
    status: str = "submitted"
    spec: dict = field(default_factory=dict)
    fingerprint: str | None = None
    shards_total: int | None = None
    shards_completed: int = 0
    waves_sealed: int = 0
    result: dict | None = None
    error: str | None = None

    def to_payload(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "fingerprint": self.fingerprint,
            "shards_total": self.shards_total,
            "shards_completed": self.shards_completed,
            "waves_sealed": self.waves_sealed,
            "result": self.result,
            "error": self.error,
        }


@dataclass
class CoordinatorState:
    """The deterministic fold of a journal's events.

    ``campaigns`` maps each campaign fingerprint to its completed
    shards as ``{index: shard_sha256}`` — exactly the projection the
    equivalence harness compares against the checkpoint store's
    resume path. ``analyses`` holds sealed wave-analysis payloads
    (``(job_id, wave) → payload``) so the read API can serve them
    without recomputation.
    """

    jobs: dict[str, JobState] = field(default_factory=dict)
    campaigns: dict[str, dict[int, str]] = field(default_factory=dict)
    analyses: dict[tuple[str, int], dict] = field(default_factory=dict)
    tip_seq: int = -1
    tip_digest: str = GENESIS_DIGEST

    def completed_shards(self, fingerprint: str) -> dict[int, str]:
        """One campaign's completed shards as ``{index: sha256}``."""
        return dict(self.campaigns.get(fingerprint, {}))

    def canonical_bytes(self) -> bytes:
        """Canonical JSON of the state — byte-comparable across
        replays, processes, and recovery paths."""
        payload = {
            "jobs": {job_id: state.to_payload()
                     for job_id, state in sorted(self.jobs.items())},
            "campaigns": {
                fingerprint: {str(index): sha
                              for index, sha in sorted(shards.items())}
                for fingerprint, shards in sorted(self.campaigns.items())
            },
        }
        import json

        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def apply(self, entry: JournalEntry) -> None:
        """Fold one entry into the state."""
        event = entry.event
        kind = event.get("kind")
        job_id = event.get("job")
        self.tip_seq = entry.seq
        self.tip_digest = entry.digest
        if kind == "submitted" and isinstance(job_id, str):
            spec = event.get("spec") or {}
            self.jobs[job_id] = JobState(
                job_id=job_id,
                kind=str(spec.get("kind", "campaign")),
                spec=dict(spec))
            return
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if kind == "started" and job is not None:
            if job.status not in _TERMINAL_STATUSES:
                job.status = "running"
        elif kind == "campaign-planned" and job is not None:
            job.fingerprint = event.get("fingerprint")
            job.shards_total = event.get("shards")
            self.campaigns.setdefault(job.fingerprint, {})
        elif kind == "shard-completed":
            fingerprint = event.get("fingerprint")
            index = event.get("index")
            sha = event.get("shard_sha256")
            if (isinstance(fingerprint, str) and isinstance(index, int)
                    and isinstance(sha, str)):
                self.campaigns.setdefault(fingerprint, {})[index] = sha
                if job is not None:
                    job.shards_completed = len(
                        self.campaigns[fingerprint])
        elif kind == "wave-sealed" and job is not None:
            wave = event.get("wave")
            if isinstance(wave, int):
                job.waves_sealed += 1
                analysis = event.get("analysis")
                if isinstance(analysis, dict):
                    self.analyses[(job.job_id, wave)] = analysis
        elif kind == "completed" and job is not None:
            job.status = "completed"
            result = event.get("result")
            job.result = dict(result) if isinstance(result, dict) else None
        elif kind == "failed" and job is not None:
            job.status = "failed"
            error = event.get("error")
            job.error = str(error) if error is not None else None
        # Unknown kinds (a newer daemon's vocabulary) fold to nothing:
        # replay of a future journal degrades to partial state, never
        # to a crash.


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------

class Journal(FingerprintNamespacedStore):
    """One service's hash-chained event log under a directory.

    Thread-safe: the daemon appends from its worker thread while
    connection threads read entries for followers; all verified
    entries stay in memory (they are small lifecycle records — the
    one large payload class, shard checkpoints, is exactly what a
    restart needs in memory anyway).
    """

    def __init__(self, directory: str | Path, fingerprint: str):
        super().__init__(directory, fingerprint)
        self._entries: list[JournalEntry] = []
        self._handle = None  # open append handle on the tail segment
        self._handle_path: Path | None = None
        self._handle_entries = 0  # entries in the tail segment
        self._lock = threading.RLock()
        # Signaled on every append; followers long-poll on it.
        self.appended = threading.Condition(self._lock)
        self._recover()

    # ------------------------------------------------------------------
    # open-time recovery
    # ------------------------------------------------------------------

    def _segment_paths(self) -> list[Path]:
        directory = self.namespace_directory
        if not directory.exists():
            return []
        return sorted(directory.glob(
            f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    @staticmethod
    def _segment_name(first_seq: int) -> str:
        return f"{_SEGMENT_PREFIX}{first_seq:08d}{_SEGMENT_SUFFIX}"

    def _recover(self) -> None:
        """Verify the chain from genesis; truncate or quarantine damage.

        Scans segments in order, verifying each line's digest and its
        link to the predecessor. The first failure splits the log:
        everything before it is the verified prefix; the failing line
        and everything after (same segment and later segments) is the
        *remainder*. An empty remainder beyond the failing line is a
        torn tail (truncate); a non-empty one is quarantined — those
        entries' ``prev`` links dangle once the damage is cut out, so
        they are unverifiable and must not be replayed.
        """
        damage: tuple[Path, int, bytes] | None = None
        segments = self._segment_paths()
        for path in segments:
            if damage is not None:
                # Everything after a damaged point is remainder.
                self._quarantine(path, path.read_bytes())
                path.unlink(missing_ok=True)
                continue
            offset = 0
            data = path.read_bytes()
            for line in data.splitlines(keepends=True):
                stripped = line.strip()
                entry = None
                if stripped and line.endswith(b"\n"):
                    entry = self._verify_line(stripped)
                if entry is None:
                    damage = (path, offset, data[offset:])
                    break
                self._entries.append(entry)
                offset += len(line)
            else:
                if data[offset:]:
                    # Trailing bytes with no newline: a torn append.
                    damage = (path, offset, data[offset:])
        if damage is None:
            return
        path, offset, remainder = damage
        later_segments = [p for p in segments if p.name > path.name]
        torn_tail_only = (not later_segments
                          and not remainder.partition(b"\n")[2].strip())
        if not torn_tail_only:
            self._quarantine(path, remainder)
        if offset == 0:
            path.unlink(missing_ok=True)
        else:
            with path.open("r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())

    def _verify_line(self, line: bytes) -> JournalEntry | None:
        import json

        try:
            data = json.loads(line.decode("utf-8"))
            entry = JournalEntry.from_json(data)
        except (UnicodeDecodeError, json.JSONDecodeError, JournalError):
            return None
        expected_seq = len(self._entries)
        expected_prev = (self._entries[-1].digest if self._entries
                         else GENESIS_DIGEST)
        if entry.seq != expected_seq or entry.prev != expected_prev:
            return None  # chain break: reordered, spliced, or skewed
        return entry

    def _quarantine(self, source: Path, remainder: bytes) -> None:
        """Preserve a damaged remainder for post-mortem, uniquely named
        so repeated recoveries never overwrite earlier evidence."""
        base = source.with_name(source.name + _QUARANTINE_SUFFIX)
        path, counter = base, 0
        while path.exists():
            counter += 1
            path = base.with_name(f"{base.name}.{counter}")
        atomic_write_bytes(path, remainder)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    @property
    def tip_seq(self) -> int:
        """The newest entry's sequence number (-1 when empty)."""
        with self._lock:
            return len(self._entries) - 1

    @property
    def tip_digest(self) -> str:
        """The newest entry's digest (genesis digest when empty).

        Two journals hold identical entry sets iff their tips agree —
        the hash chain's whole point.
        """
        with self._lock:
            return (self._entries[-1].digest if self._entries
                    else GENESIS_DIGEST)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _ensure_handle(self) -> None:
        if (self._handle is not None
                and self._handle_entries < SEGMENT_ENTRIES):
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        directory = self.namespace_directory
        directory.mkdir(parents=True, exist_ok=True)
        segments = self._segment_paths()
        next_seq = len(self._entries)
        if segments and self._handle_path is None:
            # Reopening an existing journal: count the tail segment's
            # entries to honor the rotation bound across restarts.
            tail = segments[-1]
            tail_first = int(tail.name[len(_SEGMENT_PREFIX):-len(
                _SEGMENT_SUFFIX)])
            tail_entries = next_seq - tail_first
            if tail_entries < SEGMENT_ENTRIES:
                self._handle_path = tail
                self._handle_entries = tail_entries
                self._handle = tail.open("ab")
                return
        self._handle_path = directory / self._segment_name(next_seq)
        self._handle_entries = 0
        self._handle = self._handle_path.open("ab")

    def _persist(self, entry: JournalEntry) -> None:
        import json

        self._ensure_handle()
        line = json.dumps(entry.to_json(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        # Monotonic latency of the durability hot path (write + flush +
        # fsync); observed into the sidecar registry, never journaled.
        persisted_from = time.monotonic()
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        _METRICS.histogram("journal_append_fsync_seconds").observe(
            time.monotonic() - persisted_from)
        _METRICS.counter("journal_appends_total").inc()
        self._handle_entries += 1
        self._entries.append(entry)
        self.appended.notify_all()

    def append(self, event: dict) -> JournalEntry:
        """Append one event; returns the sealed entry.

        The entry is flushed and fsynced before this returns — an
        acknowledged submission survives a power cut.
        """
        with self._lock:
            seq = len(self._entries)
            prev = self.tip_digest
            entry = JournalEntry(seq=seq, prev=prev,
                                 digest=entry_digest(seq, prev, event),
                                 event=event)
            self._persist(entry)
            return entry

    def append_replicated(self, data: dict) -> JournalEntry:
        """Append an entry received from upstream, verifying it first.

        The follower path: the entry must decode, carry a digest
        matching its own content, and link to *this* journal's tip.
        Raises :class:`JournalError` otherwise — a replica never
        persists a frame it could not verify.
        """
        entry = JournalEntry.from_json(data)
        with self._lock:
            if entry.seq != len(self._entries):
                raise JournalError(
                    f"replicated entry seq {entry.seq} does not follow "
                    f"tip {len(self._entries) - 1}")
            if entry.prev != self.tip_digest:
                raise JournalError(
                    f"replicated entry {entry.seq} does not link to "
                    f"this journal's tip digest")
            self._persist(entry)
            return entry

    def close(self) -> None:
        """Close the append handle (entries stay readable)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._handle_path = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def entries(self, start: int = 0,
                limit: int | None = None) -> list[JournalEntry]:
        """Verified entries from sequence ``start`` (a snapshot)."""
        with self._lock:
            window = self._entries[max(0, start):]
        return window[:limit] if limit is not None else window

    def wait_for(self, seq: int, timeout: float | None = None) -> bool:
        """Block until entry ``seq`` exists (or timeout); the
        follower feed's long-poll primitive."""
        with self.appended:
            return self.appended.wait_for(
                lambda: len(self._entries) > seq, timeout=timeout)

    def replay(self) -> CoordinatorState:
        """Fold the verified entries into coordinator state.

        Pure over the entry list: same journal bytes, same state
        bytes, whichever process replays them.
        """
        state = CoordinatorState()
        for entry in self.entries():
            state.apply(entry)
        return state

    def completed_shard_results(self, fingerprint: str) -> dict[int, object]:
        """Rebuild one campaign's completed shards from the journal.

        The resume path's payload source: ``shard-completed`` entries
        carry the full checkpoint JSON, verified against the recorded
        ``shard_sha256`` before decoding — a journal entry is
        chain-verified as *bytes*, but the shard codec is the authority
        on structure.
        """
        from repro.runtime.checkpoint import _shard_from_json

        completed: dict[int, object] = {}
        for entry in self.entries():
            event = entry.event
            if (event.get("kind") != "shard-completed"
                    or event.get("fingerprint") != fingerprint):
                continue
            shard = event.get("shard")
            if (not isinstance(shard, dict)
                    or content_digest(shard) != event.get("shard_sha256")):
                continue
            try:
                result = _shard_from_json(shard)
            except (KeyError, TypeError, ValueError):
                continue
            completed[result.index] = result
        return completed
