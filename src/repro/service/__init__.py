"""repro.service — the always-on audit service.

The serving layer over the one-shot runtime: a daemon
(:mod:`~repro.service.daemon`) accepting campaign/panel submissions
and queries over the distributed runtime's framed-socket protocol, an
append-only hash-chained journal (:mod:`~repro.service.journal`)
whose deterministic ``replay()`` *is* the coordinator's durable
state, a follower feed (:mod:`~repro.service.follower`) replicating
that journal to standby and read-only nodes, and a cache-backed read
API (:mod:`~repro.service.reader`).
"""

from repro.service.daemon import AuditService, ServiceClient, validate_spec
from repro.service.follower import JournalFollower, follow
from repro.service.journal import (
    CoordinatorState,
    GENESIS_DIGEST,
    Journal,
    JournalEntry,
    JournalError,
    JobState,
    entry_digest,
    service_fingerprint,
)
from repro.service.reader import ServiceReader

__all__ = [
    "AuditService",
    "CoordinatorState",
    "GENESIS_DIGEST",
    "Journal",
    "JournalEntry",
    "JournalError",
    "JournalFollower",
    "JobState",
    "ServiceClient",
    "ServiceReader",
    "entry_digest",
    "follow",
    "service_fingerprint",
    "validate_spec",
]
