"""The service's read API: audit results straight from the caches.

A served result is never recomputed. Three sources, in cost order:

* **journal state** — job status and sealed wave-analysis payloads
  are part of the replayed :class:`~repro.service.journal
  .CoordinatorState`, refreshed only when the journal tip moves;
* **panel CAS** — per-cell record payloads come from the
  :class:`~repro.longitudinal.store.PanelStore` cell files the panel
  campaign already published (digest-verified by the store itself);
* **row cache** — per-cell analysis rows come from the
  :class:`~repro.analysis.incremental.WaveRowCache` disk files the
  incremental analysis already wrote.

Disk reads are memoized per digest, so a repeated query is an
in-memory dictionary hit — the :attr:`ServiceReader.hits` /
:attr:`misses` counters are what ``bench_service.py`` measures as
reader QPS. The reader works against a *live* journal inside the
daemon and equally against a journal opened read-only by an offline
analysis process: both are just folds of the same verified entries.
"""

from __future__ import annotations

from pathlib import Path

from repro.service.journal import CoordinatorState, Journal

__all__ = ["ServiceReader"]


class ServiceReader:
    """Cached reads over one service's journal + panel store root."""

    def __init__(self, journal: Journal,
                 store_root: str | Path | None = None):
        self._journal = journal
        self._store_root = None if store_root is None else Path(store_root)
        self._state: CoordinatorState | None = None
        self._state_tip = -2  # never equal to a real tip_seq
        # (fingerprint, digest) → CAS payload; (namespace, kind,
        # digest) → analysis row. Both immutable once published
        # (content-addressed), so memoization can never serve stale.
        self._cells: dict[tuple[str, str], dict] = {}
        self._rows: dict[tuple[str, str, str], dict | None] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # journal-backed state
    # ------------------------------------------------------------------

    def state(self) -> CoordinatorState:
        """The replayed coordinator state, refreshed on tip movement.

        Incremental: only entries past the last folded tip are
        applied, so polling the state of a busy service costs O(new
        entries), not O(journal).
        """
        tip = self._journal.tip_seq
        if self._state is None:
            self._state = self._journal.replay()
            self._state_tip = self._state.tip_seq
        elif tip > self._state_tip:
            for entry in self._journal.entries(self._state_tip + 1):
                self._state.apply(entry)
            self._state_tip = self._state.tip_seq
        return self._state

    def job(self, job_id: str) -> dict | None:
        """One job's replayed state payload, or ``None``."""
        job = self.state().jobs.get(job_id)
        return None if job is None else job.to_payload()

    def wave_analysis(self, job_id: str, wave: int) -> dict | None:
        """One sealed wave's analysis payload, or ``None``."""
        if not isinstance(wave, int) or isinstance(wave, bool):
            return None
        return self.state().analyses.get((job_id, wave))

    # ------------------------------------------------------------------
    # panel CAS + row cache
    # ------------------------------------------------------------------

    def cell(self, panel_fingerprint: str, digest: str) -> dict | None:
        """One panel cell's record payload from the CAS, memoized."""
        from repro.longitudinal.store import PanelStore

        key = (panel_fingerprint, digest)
        if key in self._cells:
            self.hits += 1
            return self._cells[key]
        if (self._store_root is None
                or not isinstance(panel_fingerprint, str)
                or not isinstance(digest, str)
                # Digests name files; anything non-hex is junk (and a
                # path separator would escape the store).
                or not panel_fingerprint.isalnum()
                or not digest.isalnum()):
            self.misses += 1
            return None
        store = PanelStore(self._store_root, panel_fingerprint)
        payload = store._load_cell_payload(digest)
        self.misses += 1
        if payload is not None:
            self._cells[key] = payload
        return payload

    def row(self, namespace: str, kind: str, digest: str) -> dict | None:
        """One cached analysis row, memoized; ``None`` on miss (which
        covers both "never computed" and a legitimately-``None`` row —
        the read API does not distinguish them)."""
        from repro.analysis.incremental import WaveRowCache

        key = (namespace, kind, digest)
        if key in self._rows:
            self.hits += 1
            return self._rows[key]
        if (self._store_root is None
                or not isinstance(namespace, str)
                or not isinstance(kind, str)
                or not isinstance(digest, str)
                or not namespace.isalnum()
                or kind not in ("q12", "q3")
                or not digest.isalnum()):
            self.misses += 1
            return None
        cache = WaveRowCache(namespace, directory=self._store_root)
        hit, row = cache.lookup(kind, digest)
        self.misses += 1
        if hit:
            self._rows[key] = row
        return row

    def wave_digests(self, panel_fingerprint: str,
                     wave: int) -> dict | None:
        """One stored wave's cell references (``{"q12": [...], "q3":
        [...]}``), the index a client walks to fetch cells/rows."""
        from repro.longitudinal.store import PanelStore

        if self._store_root is None:
            return None
        if (not isinstance(wave, int) or isinstance(wave, bool)
                or not isinstance(panel_fingerprint, str)):
            return None
        store = PanelStore(self._store_root, panel_fingerprint)
        document = store._load_manifest(wave)
        if document is None or not isinstance(document.get("cells"), dict):
            return None
        return document["cells"]

    # ------------------------------------------------------------------
    # the wire-facing dispatcher
    # ------------------------------------------------------------------

    def query(self, message: dict) -> tuple[bool, object]:
        """Serve one ``query`` request; returns ``(hit, payload)``.

        ``hit`` is "the thing exists", not "it came from memory" —
        the wire client cares whether its query landed; the QPS bench
        reads the counters directly.
        """
        what = message.get("what")
        if what == "state":
            state = self.state()
            return True, {
                "tip_seq": state.tip_seq,
                "tip_digest": state.tip_digest,
                "jobs": {job_id: job.to_payload()
                         for job_id, job in state.jobs.items()},
            }
        if what == "job":
            payload = self.job(message.get("job"))
            return payload is not None, payload
        if what == "wave-analysis":
            payload = self.wave_analysis(message.get("job"),
                                         message.get("wave"))
            return payload is not None, payload
        if what == "wave-digests":
            payload = self.wave_digests(message.get("panel"),
                                        message.get("wave"))
            return payload is not None, payload
        if what == "cell":
            payload = self.cell(message.get("panel"), message.get("digest"))
            return payload is not None, payload
        if what == "row":
            payload = self.row(message.get("namespace"),
                               message.get("row_kind"),
                               message.get("digest"))
            return payload is not None, payload
        raise ValueError(f"unknown query {what!r}")
