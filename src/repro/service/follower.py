"""Journal replication: standby and read-only nodes follow the feed.

A follower replicates a coordinator's journal *over the frame
protocol* instead of sharing its disk — the replica shape of classic
always-on services. The feed is offset-based catch-up: the follower
asks for entries from its local tip (``pull`` requests, long-polling
when caught up), verifies each entry's digest and chain link against
its *own* journal (:meth:`~repro.service.journal.Journal
.append_replicated` — never trusting the wire beyond its checksums),
and persists it. Verification is cumulative: once the local tip
digest equals the coordinator's, the entire replicated history is
authenticated, which is the hash chain's point — a follower that
subscribes mid-campaign still converges to the same digest chain,
because entries 0..n are pulled and verified in order regardless of
when the subscription started.

The replica is a full :class:`~repro.service.journal.Journal`, so a
standby coordinator can ``replay()`` it into the same state bytes the
primary would recover, and a read-only analysis node can serve the
:mod:`~repro.service.reader` API from it.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.service.daemon import ServiceClient
from repro.service.journal import Journal, JournalError, service_fingerprint

__all__ = ["JournalFollower", "follow"]


class JournalFollower:
    """Replicates one coordinator's journal into a local journal."""

    def __init__(self, address: str, journal: Journal):
        self._address = address
        self._journal = journal
        self._client: ServiceClient | None = None
        self.replicated = 0  # entries appended by this follower

    @property
    def journal(self) -> Journal:
        return self._journal

    def _ensure_client(self) -> ServiceClient:
        if self._client is None:
            self._client = ServiceClient(self._address)
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self) -> "JournalFollower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def sync_once(self, wait: float = 0.0,
                  max_entries: int | None = None) -> int:
        """One pull from the local tip; returns entries replicated.

        Raises :class:`~repro.service.journal.JournalError` if the
        feed fails verification — a diverged or tampered upstream must
        stop the replica, not corrupt it.
        """
        client = self._ensure_client()
        response = client.pull(self._journal.tip_seq + 1,
                               max_entries=max_entries, wait=wait)
        if response.get("type") != "entries":
            raise JournalError(
                f"unexpected feed response: {response.get('error', response)}")
        appended = 0
        for data in response.get("entries", ()):
            self._journal.append_replicated(data)
            appended += 1
        self.replicated += appended
        return appended

    def catch_up(self, timeout: float = 30.0) -> int:
        """Pull until the local tip matches the coordinator's.

        Convergence check is by *digest*, not just sequence: matching
        tips prove the whole replicated chain is the coordinator's.
        """
        deadline = time.monotonic() + timeout
        total = 0
        while True:
            total += self.sync_once()
            response = self._ensure_client().ping()
            if (response.get("tip_seq") == self._journal.tip_seq
                    and response.get("tip_digest")
                    == self._journal.tip_digest):
                return total
            if (response.get("tip_seq") == self._journal.tip_seq
                    and response.get("tip_digest")
                    != self._journal.tip_digest):
                upstream = response.get("service") or "coordinator"
                raise JournalError(
                    f"replica tip diverged from {upstream!r} at equal "
                    "sequence — histories are incompatible")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"follower still behind after {timeout}s "
                    f"(local tip {self._journal.tip_seq}, upstream "
                    f"{response.get('tip_seq')})")

    def follow_until(self, predicate, timeout: float = 60.0,
                     wait: float = 1.0) -> None:
        """Live-tail the feed until ``predicate(journal)`` is true.

        The standby loop: long-poll pulls keep the replica within one
        round-trip of the primary's tip.
        """
        deadline = time.monotonic() + timeout
        while not predicate(self._journal):
            if time.monotonic() >= deadline:
                raise TimeoutError(f"condition not reached after {timeout}s")
            self.sync_once(wait=wait)


def follow(address: str, directory: str | Path,
           name: str = "audit") -> JournalFollower:
    """A follower replicating service ``name`` at ``address`` into a
    local journal under ``directory`` (same fingerprint namespace as
    the primary's, so the directory trees are interchangeable)."""
    journal = Journal(directory, service_fingerprint(name))
    return JournalFollower(address, journal)
