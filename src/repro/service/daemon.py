"""The always-on audit service: submissions in, journal entries out.

:class:`AuditService` is the long-lived coordinator the one-shot CLI
never was. It listens on the distributed runtime's SHA-256
framed-socket protocol (:func:`~repro.runtime.distributed.read_frame`
/ :func:`~repro.runtime.distributed.write_frame` — same frames, same
transports: a Unix socket path or TCP ``host:port``), accepts
campaign and panel *submissions* into a queue, and drives them
in-process through the ordinary runtime — ``dispatch_shards`` for
campaigns, :class:`~repro.longitudinal.campaign.PanelCampaign` for
panels.

Every lifecycle step is an entry in the hash-chained
:class:`~repro.service.journal.Journal`, and the journal is the
service's *only* durable state: a restarted daemon replays it,
re-enqueues unfinished jobs, and resumes their campaigns from the
journaled shard payloads — no checkpoint directory, no manifest,
nothing to heal. Kill the daemon at any instruction and
``Journal.replay()`` reconstructs exactly the completed-shard state a
:class:`~repro.runtime.checkpoint.CheckpointStore` resume would have
loaded (the equivalence harness proves the two byte-equal).

Request vocabulary (one frame in, one frame out, per request;
connections are persistent):

``ping``
    Liveness + tip: ``{"type": "pong", "tip_seq", "tip_digest"}``.
``submit``
    ``{"type": "submit", "spec": {...}}`` — a campaign or panel job
    (see :func:`validate_spec`). Acknowledged only after the
    ``submitted`` journal entry is fsynced.
``status`` / ``jobs``
    One job's replayed state, or every job's.
``query``
    The read API (:mod:`repro.service.reader`): sealed wave analyses,
    panel CAS cells, cached analysis rows — served from caches, never
    recomputed.
``pull``
    The follower feed: journal entries from an offset, long-polling
    up to ``wait`` seconds when the requested offset is past the tip
    (see :mod:`repro.service.follower`).
``metrics``
    The live ops surface: the daemon's metrics registry as canonical
    JSON plus Prometheus text (:mod:`repro.obs.metrics`). Read-only —
    the journal is untouched.
``trace``
    The daemon's span buffer (and, given a ``fingerprint``, the
    published trace sidecar) for ``repro trace`` to stitch and render.
``shutdown``
    Stop the service loop (the daemon's clean exit; SIGKILL is the
    tested one).
"""

from __future__ import annotations

import os
import queue
import socket
import tempfile
import threading
from pathlib import Path

from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import (
    BUFFER as _TRACE_BUFFER,
    adopt_trace_context,
    configure_tracing,
    current_trace_context,
    span,
    trace_dir_from_environment,
    tracing_enabled,
)
from repro.runtime.cache import content_digest
from repro.runtime.distributed import (
    PROTOCOL_VERSION,
    FrameError,
    _connect,
    _scenario_from_json,
    read_frame,
    write_frame,
)
from repro.service.journal import CoordinatorState, Journal, service_fingerprint
from repro.service.reader import ServiceReader

__all__ = ["AuditService", "ServiceClient", "validate_spec"]

# How long the accept loop sleeps between stop-flag checks.
_ACCEPT_POLL_SECONDS = 0.2

# Hard cap on one pull response's entry count: a shard-completed entry
# embeds a full checkpoint payload, and an unbounded batch could build
# an arbitrarily large frame in memory.
_MAX_PULL_ENTRIES = 256

_JOB_KINDS = ("campaign", "panel")


def validate_spec(spec) -> dict:
    """Normalize one submission spec; raises ``ValueError`` on junk.

    A spec is ``{"kind": "campaign"|"panel", "scenario": {...}, ...}``
    with the scenario in the distributed protocol's JSON form. The
    scenario is decoded *now* — a submission the runtime cannot
    execute must be refused at the socket, not discovered as a failed
    job hours later.
    """
    if not isinstance(spec, dict):
        raise ValueError("spec must be a JSON object")
    kind = spec.get("kind", "campaign")
    if kind not in _JOB_KINDS:
        raise ValueError(f"spec kind must be one of {_JOB_KINDS}, "
                         f"got {kind!r}")
    scenario = spec.get("scenario")
    if not isinstance(scenario, dict):
        raise ValueError("spec needs a scenario object")
    try:
        _scenario_from_json(scenario)
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"spec scenario does not decode: {error}") from None
    shards = spec.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        raise ValueError("spec shards must be a positive integer")
    if kind == "panel":
        horizons = spec.get("horizons", [1])
        if (not isinstance(horizons, list) or not horizons
                or any(not isinstance(h, int) or h < 1 for h in horizons)
                or horizons != sorted(set(horizons))):
            raise ValueError("spec horizons must be a strictly increasing "
                             "list of positive years")
    normalized = dict(spec)
    normalized["kind"] = kind
    normalized["shards"] = shards
    return normalized


class AuditService:
    """One always-on audit coordinator over a journal.

    ``journal_dir`` is the journal root (shared with other services'
    journals safely — fingerprint namespacing); ``name`` identifies
    this logical service across restarts. ``address`` is a Unix
    socket path or TCP ``host:port`` (``host:0`` binds an ephemeral
    port, resolved on :attr:`address` after :meth:`start`); ``None``
    picks a fresh Unix socket in a tempdir. ``store_dir`` roots the
    panel CAS + row cache the read API serves from.

    ``start_worker=False`` leaves the submission queue paused —
    submissions are journaled and acknowledged but never executed —
    which is how the benchmark isolates ingest throughput.
    """

    def __init__(
        self,
        journal_dir: str | Path,
        name: str = "audit",
        address: str | None = None,
        store_dir: str | Path | None = None,
        start_worker: bool = True,
    ):
        self._name = name
        self._journal = Journal(journal_dir, service_fingerprint(name))
        self._store_dir = None if store_dir is None else Path(store_dir)
        self._reader = ServiceReader(self._journal,
                                     store_root=self._store_dir)
        self._requested_address = address
        self._address: str | None = None
        self._tmpdir: str | None = None
        self._start_worker = start_worker
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._stop = threading.Event()
        self._lock = threading.Lock()  # append + state fold, atomically
        self._state = self._journal.replay()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        if tracing_enabled():
            configure_tracing(service_fingerprint(name), site="daemon")

    # ------------------------------------------------------------------
    # state + journal (the only mutation path)
    # ------------------------------------------------------------------

    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def state(self) -> CoordinatorState:
        return self._state

    @property
    def address(self) -> str:
        """The bound address (resolved: TCP port 0 becomes the real
        port). Only meaningful after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("service is not started")
        return self._address

    def _record(self, event: dict) -> None:
        """Journal one event and fold it into live state, atomically —
        a status query can never observe a journaled-but-unfolded
        entry or vice versa."""
        with self._lock:
            entry = self._journal.append(event)
            self._state.apply(entry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _bind(self) -> None:
        address = self._requested_address
        if address is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-service-")
            address = os.path.join(self._tmpdir, "service.sock")
        if os.sep in address or ":" not in address:
            listener = socket.socket(socket.AF_UNIX)
            listener.bind(address)
            self._address = address
        else:
            host, _, port = address.rpartition(":")
            listener = socket.socket(socket.AF_INET)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, int(port)))
            self._address = "%s:%d" % listener.getsockname()[:2]
        listener.listen(16)
        listener.settimeout(_ACCEPT_POLL_SECONDS)
        self._listener = listener

    def start(self) -> "AuditService":
        """Bind, recover, and serve in background threads.

        Recovery is the journal replay already done at construction:
        every journaled job that never reached a terminal state is
        re-enqueued (its completed shards replay from the journal, so
        only the remainder executes).
        """
        self._bind()
        for job_id, job in self._state.jobs.items():
            if job.status not in ("completed", "failed"):
                self._queue.put(job_id)
        accept = threading.Thread(target=self._accept_loop, daemon=True,
                                  name="service-accept")
        accept.start()
        self._threads.append(accept)
        if self._start_worker:
            worker = threading.Thread(target=self._worker_loop, daemon=True,
                                      name="service-worker")
            worker.start()
            self._threads.append(worker)
        return self

    def serve_forever(self) -> None:
        """Run until a ``shutdown`` request (the CLI entry point)."""
        self.start()
        self._stop.wait()
        self.close()

    def stop(self) -> None:
        self._stop.set()

    def close(self) -> None:
        self.stop()
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for thread in list(self._threads):
            thread.join(timeout=5)
        self._threads.clear()
        self._journal.close()
        if self._tmpdir is not None:
            import shutil

            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None

    def __enter__(self) -> "AuditService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the accept loop and request protocol
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            thread = threading.Thread(target=self._serve_client,
                                      args=(conn,), daemon=True,
                                      name="service-client")
            thread.start()
            # Register so close() can join instead of abandoning the
            # client mid-frame; prune finished handles so a long-lived
            # daemon doesn't accumulate them.
            self._threads.append(thread)
            self._threads[:] = [t for t in self._threads if t.is_alive()]

    def _serve_client(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while not self._stop.is_set():
                try:
                    message = read_frame(stream)
                except (EOFError, OSError):
                    return
                except FrameError as error:
                    # A damaged request gets a damage report, not a
                    # hangup: the client's retry is one frame away.
                    try:
                        write_frame(stream, {"type": "error",
                                             "error": str(error)})
                        continue
                    except OSError:
                        return
                response = self._handle(message)
                try:
                    write_frame(stream, response)
                except OSError:
                    return
                if message.get("type") == "shutdown":
                    self._stop.set()
                    return
        finally:
            try:
                stream.close()
            except OSError:
                pass
            conn.close()

    def _handle(self, message: dict) -> dict:
        kind = message.get("type")
        if kind == "ping":
            return {"type": "pong", "protocol": PROTOCOL_VERSION,
                    "service": self._name,
                    "tip_seq": self._journal.tip_seq,
                    "tip_digest": self._journal.tip_digest}
        if kind == "submit":
            return self._handle_submit(message)
        if kind == "status":
            job = self._state.jobs.get(message.get("job"))
            if job is None:
                return {"type": "error",
                        "error": f"unknown job {message.get('job')!r}"}
            return {"type": "status", "job": job.job_id,
                    "state": job.to_payload()}
        if kind == "jobs":
            return {"type": "jobs",
                    "jobs": [job.to_payload()
                             for job in self._state.jobs.values()]}
        if kind == "query":
            return self._handle_query(message)
        if kind == "metrics":
            return self._handle_metrics()
        if kind == "trace":
            return self._handle_trace(message)
        if kind == "pull":
            return self._handle_pull(message)
        if kind == "shutdown":
            return {"type": "bye"}
        return {"type": "error", "error": f"unknown request type {kind!r}"}

    def _handle_submit(self, message: dict) -> dict:
        try:
            spec = validate_spec(message.get("spec"))
        except ValueError as error:
            return {"type": "error", "error": str(error)}
        if tracing_enabled():
            # Stitch this daemon's job spans under the submitter's
            # campaign trace; an absent/invalid context re-roots at
            # the daemon's own fingerprint-derived trace instead.
            adopt_trace_context(message.get("trace_context"))
        with self._lock:
            # Deterministic ids — a job is its submission position plus
            # its content, so a replayed journal names the same jobs.
            seq = self._journal.tip_seq + 1
            job_id = "job-" + content_digest({"seq": seq, "spec": spec})[:12]
            entry = self._journal.append(
                {"kind": "submitted", "job": job_id, "spec": spec})
            self._state.apply(entry)
        self._queue.put(job_id)
        return {"type": "accepted", "job": job_id, "seq": entry.seq,
                "digest": entry.digest}

    def _handle_query(self, message: dict) -> dict:
        try:
            hit, payload = self._reader.query(message)
        except ValueError as error:
            return {"type": "error", "error": str(error)}
        response = {"type": "result", "hit": hit, "payload": payload}
        if not hit and not any(
                job.status == "completed"
                for job in self._state.jobs.values()):
            # A miss against a service with nothing sealed yet is an
            # expected state, not damage: say so in a typed field the
            # client can render instead of an opaque miss.
            response["empty"] = True
            response["reason"] = ("service has no completed jobs yet; "
                                  "nothing is served until one seals")
        return response

    def _handle_metrics(self) -> dict:
        """The live ops surface (read-only; the journal is untouched)."""
        return {"type": "metrics",
                "snapshot": _METRICS.snapshot(),
                "prometheus": _METRICS.render_prometheus()}

    def _handle_trace(self, message: dict) -> dict:
        """Serve spans: the live buffer, or a published sidecar trace."""
        fingerprint = message.get("fingerprint")
        if isinstance(fingerprint, str) and fingerprint:
            from repro.obs.trace import TraceStore

            root = trace_dir_from_environment()
            if root is None and self._store_dir is not None:
                root = self._store_dir / "traces"
            if root is None or not fingerprint.isalnum():
                return {"type": "trace", "trace_id": None, "spans": []}
            store = TraceStore(root, fingerprint)
            return {"type": "trace", "trace_id": None,
                    "spans": store.load_spans()}
        return {"type": "trace", "trace_id": _TRACE_BUFFER.trace_id,
                "spans": _TRACE_BUFFER.snapshot()}

    def _handle_pull(self, message: dict) -> dict:
        start = message.get("from", 0)
        if not isinstance(start, int) or start < 0:
            return {"type": "error", "error": "pull 'from' must be a "
                                              "non-negative integer"}
        limit = min(int(message.get("max") or _MAX_PULL_ENTRIES),
                    _MAX_PULL_ENTRIES)
        wait = float(message.get("wait") or 0.0)
        if wait > 0:
            # Long-poll: a caught-up follower parks here instead of
            # hammering the socket with empty pulls.
            self._journal.wait_for(start, timeout=min(wait, 30.0))
        entries = self._journal.entries(start, limit=limit)
        return {"type": "entries",
                "entries": [entry.to_json() for entry in entries],
                "tip_seq": self._journal.tip_seq,
                "tip_digest": self._journal.tip_digest}

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=_ACCEPT_POLL_SECONDS)
            except queue.Empty:
                continue
            job = self._state.jobs.get(job_id)
            if job is None or job.status in ("completed", "failed"):
                continue
            self._record({"kind": "started", "job": job_id})
            try:
                with span("service.job", job=job_id, kind=job.kind):
                    if job.kind == "panel":
                        result = self._run_panel(job_id, job.spec)
                    else:
                        result = self._run_campaign(job_id, job.spec)
            except Exception as error:  # noqa: BLE001 — journaled
                self._record({"kind": "failed", "job": job_id,
                              "error": f"{type(error).__name__}: {error}"})
            else:
                self._record({"kind": "completed", "job": job_id,
                              "result": result})

    def _run_campaign(self, job_id: str, spec: dict) -> dict:
        """One campaign job, journal-checkpointed shard by shard."""
        from repro.bqt.engine import EngineConfig
        from repro.core.sampling import SamplingPolicy
        from repro.runtime.checkpoint import (
            _record_to_json,
            _shard_to_json,
            campaign_fingerprint,
        )
        from repro.runtime.executor import RuntimeConfig, dispatch_shards
        from repro.runtime.merge import merge_shard_results
        from repro.runtime.shards import DEFAULT_ISPS, plan_shards
        from repro.synth.world import build_world

        scenario = _scenario_from_json(spec["scenario"])
        world = build_world(scenario)
        shards = spec["shards"]
        policy = (SamplingPolicy(**spec["policy"])
                  if spec.get("policy") else None)
        engine_config = (EngineConfig(**spec["engine_config"])
                         if spec.get("engine_config") else None)
        isps = tuple(spec.get("isps") or DEFAULT_ISPS)
        states = tuple(spec["states"]) if spec.get("states") else None
        q3_states = tuple(spec["q3_states"]) if spec.get("q3_states") else None
        max_replacements = int(spec.get("max_replacements", 2))
        fingerprint = campaign_fingerprint(
            scenario, policy, isps, shards, states=states,
            q3_states=q3_states, max_replacements=max_replacements)
        self._record({"kind": "campaign-planned", "job": job_id,
                      "fingerprint": fingerprint, "shards": shards})
        # The journal-backed resume: shards this journal already holds
        # (from a previous life of this daemon) replay instead of
        # re-executing — the journal is the checkpoint store here.
        completed = self._journal.completed_shard_results(fingerprint)
        specs = plan_shards(world, shards, isps=isps, states=states,
                            q3_states=q3_states)

        def on_complete(result) -> None:
            shard = _shard_to_json(result)
            self._record({
                "kind": "shard-completed", "job": job_id,
                "fingerprint": fingerprint, "index": result.index,
                "shard": shard, "shard_sha256": content_digest(shard),
            })
            completed[result.index] = result

        pending = [s for s in specs if s.index not in completed]
        dispatch_shards(world, pending,
                        RuntimeConfig(shards=shards, backend="serial"),
                        on_complete, policy=policy,
                        engine_config=engine_config,
                        max_replacements=max_replacements)
        collection, q3 = merge_shard_results(
            world, specs, completed, policy=policy, isps=isps,
            states=states, q3_states=q3_states)
        logbook_sha = content_digest({
            "q12": [_record_to_json(r) for r in collection.log],
            "q3": [_record_to_json(r) for r in q3.log],
        })
        self._record({"kind": "campaign-sealed", "job": job_id,
                      "fingerprint": fingerprint,
                      "logbook_sha256": logbook_sha})
        return {"fingerprint": fingerprint,
                "q12_records": len(collection.log),
                "q3_records": len(q3.log),
                "logbook_sha256": logbook_sha}

    def _run_panel(self, job_id: str, spec: dict) -> dict:
        """One panel job: waves through the longitudinal machinery.

        The panel persists into the service's ``store_dir`` (CAS cells
        + disk-backed analysis rows), which is exactly what the read
        API serves from — running a panel *warms the reader*.
        """
        from repro.analysis.incremental import (
            row_cache_for,
            wave_analysis,
        )
        from repro.core.sampling import SamplingPolicy
        from repro.longitudinal.campaign import PanelCampaign
        from repro.synth.churn import ChurnModel
        from repro.synth.world import build_world

        scenario = _scenario_from_json(spec["scenario"])
        world = build_world(scenario)
        policy = (SamplingPolicy(**spec["policy"])
                  if spec.get("policy") else None)
        model = (ChurnModel(**spec["model"]) if spec.get("model") else None)
        horizons = tuple(spec.get("horizons", [1]))
        store_dir = (str(self._store_dir)
                     if self._store_dir is not None else None)
        campaign = PanelCampaign(
            world, model=model, horizons=horizons, policy=policy,
            store_dir=store_dir, resume=store_dir is not None)
        rows = row_cache_for(campaign, directory=store_dir)
        sealed = []
        for outcome in campaign.waves():
            self._record({"kind": "wave-planned", "job": job_id,
                          "wave": outcome.wave,
                          "horizon_years": outcome.horizon_years})
            analysis = wave_analysis(outcome, cache=rows)
            self._record({
                "kind": "wave-sealed", "job": job_id,
                "wave": outcome.wave,
                "analysis": analysis.to_payload(),
                "panel_fingerprint": campaign.fingerprint,
                "rows_namespace": rows.namespace,
                "restored": outcome.restored_from_store,
            })
            sealed.append(outcome.wave)
        self._record({"kind": "swept", "job": job_id,
                      "panel_fingerprint": campaign.fingerprint})
        return {"panel_fingerprint": campaign.fingerprint,
                "waves": sealed, "rows_namespace": rows.namespace}


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------

class ServiceClient:
    """One persistent client connection to an :class:`AuditService`.

    Thin: every method is one request frame and one response frame
    over the shared protocol. Addresses are the distributed module's
    (Unix path or ``host:port``).
    """

    def __init__(self, address: str):
        self._sock = _connect(address)
        self._stream = self._sock.makefile("rwb")

    def request(self, message: dict) -> dict:
        write_frame(self._stream, message)
        return read_frame(self._stream)

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # convenience wrappers ------------------------------------------------

    def ping(self) -> dict:
        response = self.request({"type": "ping"})
        # Daemons that predate versioned pongs omit the key.
        peer = response.get("protocol", PROTOCOL_VERSION)
        if peer != PROTOCOL_VERSION:
            raise RuntimeError(
                f"protocol skew: daemon speaks {peer!r}, this client "
                f"speaks {PROTOCOL_VERSION!r}")
        return response

    def submit(self, spec: dict) -> dict:
        frame = {"type": "submit", "spec": spec}
        context = current_trace_context()
        if context is not None:
            # Versioned span-stitching context; pre-obs daemons ignore
            # the extra key and decode the frame unchanged.
            frame["trace_context"] = context
        response = self.request(frame)
        if response.get("type") != "accepted":
            raise RuntimeError(
                f"submission refused: {response.get('error', response)}")
        return response

    def status(self, job_id: str) -> dict:
        return self.request({"type": "status", "job": job_id})

    def jobs(self) -> list[dict]:
        return self.request({"type": "jobs"}).get("jobs", [])

    def query(self, **what) -> dict:
        return self.request({"type": "query", **what})

    def metrics(self) -> dict:
        return self.request({"type": "metrics"})

    def trace(self, fingerprint: str | None = None) -> dict:
        frame: dict = {"type": "trace"}
        if fingerprint is not None:
            frame["fingerprint"] = fingerprint
        return self.request(frame)

    def pull(self, start: int, max_entries: int | None = None,
             wait: float = 0.0) -> dict:
        return self.request({"type": "pull", "from": start,
                             "max": max_entries, "wait": wait})

    def shutdown(self) -> dict:
        return self.request({"type": "shutdown"})

    def wait_for_job(self, job_id: str, timeout: float = 60.0,
                     poll: float = 0.1) -> dict:
        """Poll until a job reaches a terminal state (test helper)."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            response = self.status(job_id)
            state = response.get("state") or {}
            if state.get("status") in ("completed", "failed"):
                return state
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.get('status')!r} after "
                    f"{timeout}s")
            time.sleep(poll)
