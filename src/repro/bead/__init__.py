"""BEAD: applying the paper's framework to the next program.

The paper's conclusion (Section 6) argues its post-hoc evaluation
framework "could be readily applied to the BEAD program, which is
poised to spend over $42 billion". This package is that application —
the paper's stated future work, built out:

* :mod:`repro.bead.allocation` — the BEAD allocation mechanism:
  a statutory minimum per state plus a share proportional to each
  state's unserved locations.
* :mod:`repro.bead.program` — a BEAD-style program instance over a
  synthetic world: subgrants with service obligations (BEAD's floor is
  100/20 Mbps, not CAF's 10/1) and certified deployments.
* :mod:`repro.bead.planner` — the oversight planner: given an audit
  budget, choose review sample sizes (detection power), CBG sampling
  floors (sensitivity), and BQT worker allocations (campaign
  arithmetic), and report the expected audit duration and coverage.
"""

from repro.bead.allocation import BeadAllocation, allocate_bead_funds
from repro.bead.planner import AuditPlan, OversightPlanner
from repro.bead.program import BeadProgram, BeadSubgrant

__all__ = [
    "AuditPlan",
    "BeadAllocation",
    "BeadProgram",
    "BeadSubgrant",
    "OversightPlanner",
    "allocate_bead_funds",
]
