"""A BEAD-style program instance over a synthetic world.

BEAD differs from CAF in the dimensions the paper highlights: a higher
service floor (100/20 Mbps vs 10/1), state-administered subgrants
rather than FCC-assigned support, and — if the paper's recommendation
is followed — funding conditioned on *past compliance*. The program
model here supports exactly those levers so the oversight planner has
something real to plan against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.bead.allocation import BeadAllocation
from repro.core.audit import AuditDataset

__all__ = ["BeadSubgrant", "BeadProgram",
           "BEAD_MIN_DOWNLOAD_MBPS", "BEAD_MIN_UPLOAD_MBPS"]

BEAD_MIN_DOWNLOAD_MBPS = 100.0
BEAD_MIN_UPLOAD_MBPS = 20.0


@dataclass(frozen=True)
class BeadSubgrant:
    """One state subgrant to one ISP."""

    state: str
    isp_id: str
    amount_usd: float
    locations: int
    min_download_mbps: float = BEAD_MIN_DOWNLOAD_MBPS
    min_upload_mbps: float = BEAD_MIN_UPLOAD_MBPS

    def __post_init__(self) -> None:
        if self.amount_usd <= 0:
            raise ValueError("subgrant amount must be positive")
        if self.locations <= 0:
            raise ValueError("subgrant must cover at least one location")

    @property
    def support_per_location(self) -> float:
        """Dollars per covered location."""
        return self.amount_usd / self.locations


@dataclass
class BeadProgram:
    """A state-administered BEAD program."""

    allocation: BeadAllocation
    subgrants: list[BeadSubgrant] = field(default_factory=list)

    def award(self, subgrant: BeadSubgrant) -> None:
        """Record a subgrant; rejects over-allocation of a state fund."""
        committed = self.committed_for(subgrant.state) + subgrant.amount_usd
        available = self.allocation.amount_for(subgrant.state)
        if committed > available + 1e-6:
            raise ValueError(
                f"{subgrant.state} over-allocated: committed "
                f"${committed:,.0f} of ${available:,.0f}")
        self.subgrants.append(subgrant)

    def committed_for(self, state: str) -> float:
        """Dollars already awarded in one state."""
        return sum(s.amount_usd for s in self.subgrants
                   if s.state == state)

    def locations_by_isp(self) -> Mapping[str, int]:
        """Covered locations per ISP across all states."""
        totals: dict[str, int] = {}
        for subgrant in self.subgrants:
            totals[subgrant.isp_id] = totals.get(subgrant.isp_id, 0) \
                + subgrant.locations
        return totals

    # ------------------------------------------------------------------
    # The paper's §6 recommendation: weight awards by past compliance.
    # ------------------------------------------------------------------
    @staticmethod
    def compliance_weights(
        audit: AuditDataset, isps: Iterable[str]
    ) -> dict[str, float]:
        """Award weights from a CAF audit's per-ISP serviceability.

        "Federal and state officials should consider past compliance
        with funding programs such as CAF when deciding how to allocate
        new funds" — here, an ISP's weight is simply its audited
        serviceability rate, so a provider that certified phantom
        coverage bids with a handicap.
        """
        weights = {}
        for isp in isps:
            try:
                weights[isp] = audit.serviceability_rate(isp_id=isp)
            except ValueError:
                weights[isp] = 1.0  # never audited → no track record
        return weights

    def split_state_fund(
        self,
        state: str,
        locations_by_isp: Mapping[str, int],
        compliance_weights: Mapping[str, float] | None = None,
    ) -> list[BeadSubgrant]:
        """Split a state's fund across bidding ISPs.

        Shares are proportional to locations covered, optionally scaled
        by compliance weights; awards are recorded on the program.
        """
        if not locations_by_isp:
            raise ValueError("no bidders")
        available = self.allocation.amount_for(state) \
            - self.committed_for(state)
        if available <= 0:
            raise ValueError(f"{state} fund is exhausted")
        scores = {}
        for isp, locations in locations_by_isp.items():
            if locations <= 0:
                raise ValueError(f"bidder {isp} covers no locations")
            weight = (compliance_weights or {}).get(isp, 1.0)
            scores[isp] = locations * max(weight, 1e-6)
        total_score = sum(scores.values())
        awards = []
        for isp in sorted(scores):
            amount = available * scores[isp] / total_score
            subgrant = BeadSubgrant(
                state=state, isp_id=isp, amount_usd=amount,
                locations=locations_by_isp[isp])
            self.award(subgrant)
            awards.append(subgrant)
        return awards
