"""The BEAD oversight planner.

Combines the repository's three measurement-design tools into one
planning object:

* *detection power* (:mod:`repro.core.oversight`) sizes the certified-
  location reviews a state must run to catch false certifications;
* the *sampling floor* result (Appendix 8.2 / Figure 9) sets the
  per-CBG external-audit sample;
* the *campaign arithmetic* (:mod:`repro.bqt.campaign`) converts the
  resulting query counts into wall-clock, respecting the politeness cap
  on per-ISP concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bqt.campaign import (
    MAX_POLITE_WORKERS_PER_ISP,
    estimate_duration,
    plan_study,
)
from repro.core.oversight import required_sample_for_power
from repro.core.sampling import SamplingPolicy

__all__ = ["AuditPlan", "OversightPlanner"]


@dataclass(frozen=True)
class AuditPlan:
    """A concrete oversight plan for one program year."""

    review_sample_by_isp: Mapping[str, int]
    audit_policy: SamplingPolicy
    audit_queries_by_isp: Mapping[str, int]
    audit_wall_clock_days: float
    bottleneck_isp: str

    def render(self) -> str:
        """Human-readable plan."""
        lines = ["Oversight plan:"]
        lines.append("  certification reviews (detection-power sized):")
        for isp, sample in sorted(self.review_sample_by_isp.items()):
            lines.append(f"    {isp}: review {sample} certified locations")
        lines.append(
            f"  external audit: floor {self.audit_policy.min_samples} / "
            f"{self.audit_policy.sampling_fraction:.0%} per CBG")
        for isp, queries in sorted(self.audit_queries_by_isp.items()):
            lines.append(f"    {isp}: ~{queries} queries")
        lines.append(
            f"  expected wall clock: {self.audit_wall_clock_days:.1f} days "
            f"(bottleneck: {self.bottleneck_isp})")
        return "\n".join(lines)


class OversightPlanner:
    """Designs reviews and audits for a set of funded ISPs."""

    def __init__(
        self,
        suspected_unserved_fraction: float = 0.10,
        detection_power_target: float = 0.99,
        sampling_policy: SamplingPolicy | None = None,
    ):
        if not 0.0 < suspected_unserved_fraction < 1.0:
            raise ValueError("suspected fraction must be in (0, 1)")
        self._suspected = suspected_unserved_fraction
        self._power = detection_power_target
        self._policy = sampling_policy or SamplingPolicy()

    @property
    def policy(self) -> SamplingPolicy:
        """The external-audit sampling policy."""
        return self._policy

    def review_sample_size(self) -> int:
        """Certified locations per ISP review for the power target."""
        return required_sample_for_power(self._suspected, self._power)

    def audit_queries_for(self, cbg_sizes: list[int]) -> int:
        """Total queries the external audit needs over given CBGs."""
        return sum(self._policy.target_for(size) for size in cbg_sizes)

    def plan(
        self,
        cbg_sizes_by_isp: Mapping[str, list[int]],
        workers_per_isp: int = MAX_POLITE_WORKERS_PER_ISP,
    ) -> AuditPlan:
        """Produce the full plan for the funded ISPs."""
        if not cbg_sizes_by_isp:
            raise ValueError("no funded ISPs to oversee")
        review_sample = self.review_sample_size()
        queries = {
            isp: self.audit_queries_for(sizes)
            for isp, sizes in cbg_sizes_by_isp.items()
        }
        estimate = estimate_duration(
            plan_study(queries, workers_per_isp=workers_per_isp))
        return AuditPlan(
            review_sample_by_isp={isp: review_sample for isp in queries},
            audit_policy=self._policy,
            audit_queries_by_isp=queries,
            audit_wall_clock_days=estimate.wall_clock_days,
            bottleneck_isp=estimate.bottleneck_isp,
        )
