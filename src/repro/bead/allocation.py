"""The BEAD allocation mechanism.

BEAD allocates $42.45B: every state receives a $100M statutory minimum,
and the remainder is distributed proportionally to each state's share
of unserved broadband-serviceable locations. The unserved counts here
come from any location source with a served/unserved flag — in this
repository, the ground truth of a synthetic world or the certified
national CAF Map (treating non-compliant locations as unserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.stats.distributions import allocate_counts

__all__ = ["BeadAllocation", "allocate_bead_funds",
           "BEAD_TOTAL_USD", "BEAD_STATE_MINIMUM_USD"]

BEAD_TOTAL_USD = 42_450_000_000.0
BEAD_STATE_MINIMUM_USD = 100_000_000.0


@dataclass(frozen=True)
class BeadAllocation:
    """A complete BEAD fund allocation across states."""

    amounts_by_state: Mapping[str, float]
    total_usd: float
    minimum_usd: float

    def __post_init__(self) -> None:
        allocated = sum(self.amounts_by_state.values())
        if abs(allocated - self.total_usd) > 1.0:
            raise ValueError(
                f"allocation sums to {allocated}, expected {self.total_usd}")

    def amount_for(self, state: str) -> float:
        """Allocated dollars for one state."""
        try:
            return self.amounts_by_state[state]
        except KeyError:
            raise KeyError(f"no allocation for state {state!r}") from None

    def top_states(self, n: int) -> list[tuple[str, float]]:
        """The ``n`` largest allocations, descending."""
        if n <= 0:
            raise ValueError("n must be positive")
        return sorted(self.amounts_by_state.items(),
                      key=lambda kv: -kv[1])[:n]


def allocate_bead_funds(
    unserved_by_state: Mapping[str, int],
    total_usd: float = BEAD_TOTAL_USD,
    minimum_usd: float = BEAD_STATE_MINIMUM_USD,
) -> BeadAllocation:
    """Allocate ``total_usd`` across states.

    Each state gets ``minimum_usd``; the remainder is split by unserved
    shares (largest-remainder at dollar granularity). States with zero
    unserved locations still receive the minimum, as under the statute.
    """
    if not unserved_by_state:
        raise ValueError("need at least one state")
    if any(count < 0 for count in unserved_by_state.values()):
        raise ValueError("unserved counts must be non-negative")
    states = sorted(unserved_by_state)
    floor_total = minimum_usd * len(states)
    if floor_total > total_usd:
        raise ValueError(
            f"minimums (${floor_total:,.0f}) exceed the fund "
            f"(${total_usd:,.0f})")
    remainder = total_usd - floor_total
    total_unserved = sum(unserved_by_state.values())
    if total_unserved == 0:
        shares = {state: minimum_usd + remainder / len(states)
                  for state in states}
    else:
        proportional = allocate_counts(
            round(remainder),
            [unserved_by_state[state] for state in states],
        )
        shares = {state: minimum_usd + float(amount)
                  for state, amount in zip(states, proportional)}
    return BeadAllocation(
        amounts_by_state=shares,
        total_usd=float(sum(shares.values())),
        minimum_usd=minimum_usd,
    )
