"""repro.obs — zero-dependency observability for the audit stack.

Three coupled layers, all sidecar-only (nothing here ever changes a
logbook, checkpoint, journal, or digest byte — the equivalence
harness proves runs with ``REPRO_TRACE=1`` byte-identical to runs
without):

* :mod:`repro.obs.trace` — deterministic-id spans, per-process
  buffering, frame-borne cross-process stitching, and the
  fingerprint-namespaced JSONL :class:`~repro.obs.trace.TraceStore`
  sidecar;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with fixed
  log-scale buckets, commutative snapshot merging across worker
  frames, and Prometheus-text + canonical-JSON expositions;
* :mod:`repro.obs.report` — span-tree assembly, per-stage self-time
  rendering, and critical-path extraction for the CLI ops surface.
"""

from repro.obs.metrics import (DEFAULT_BUCKETS, REGISTRY, SNAPSHOT_VERSION,
                               Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.report import (build_tree, critical_path, render_tree,
                              self_seconds)
from repro.obs.trace import (BUFFER, TRACE_CONTEXT_VERSION, TRACE_ENV_DIR,
                             TRACE_ENV_FLAG, Span, TraceBuffer, TraceStore,
                             adopt_trace_context, configure_tracing,
                             current_trace_context, drain_spans,
                             ingest_spans, publish_trace, span,
                             trace_dir_from_environment, tracing_enabled)

__all__ = [
    "BUFFER",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SNAPSHOT_VERSION",
    "Span",
    "TRACE_CONTEXT_VERSION",
    "TRACE_ENV_DIR",
    "TRACE_ENV_FLAG",
    "TraceBuffer",
    "TraceStore",
    "adopt_trace_context",
    "build_tree",
    "configure_tracing",
    "critical_path",
    "current_trace_context",
    "drain_spans",
    "ingest_spans",
    "publish_trace",
    "render_tree",
    "self_seconds",
    "span",
    "trace_dir_from_environment",
    "tracing_enabled",
]
