"""repro.obs.metrics — counters, gauges, and deterministic histograms.

The registry is a plain in-process map of named instruments. Three
properties make it safe to wire into the hot paths:

* **zero dependencies** — stdlib only, so any module (including the
  cache and the journal) can instrument itself without import cycles;
* **sidecar-only** — snapshots ride *beside* checkpoint payloads on
  the existing result frames (like the politeness peaks do) and are
  rendered to their own exposition files; nothing here ever enters a
  logbook, journal entry, or digest, so the byte contract is untouched;
* **deterministic merge** — histograms use fixed log-scale bucket
  boundaries, counters add, and gauges combine by ``max``, so merging
  worker snapshots is commutative and associative: the merged view is
  identical no matter which shard's frame lands first.

Instrument handles are cheap to hold (``counter(...)`` get-or-creates
once, then ``inc()`` is an attribute add), which keeps the overhead of
an instrumented hot path within the bench_obs budget.
"""

from __future__ import annotations

import bisect
import json
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "SNAPSHOT_VERSION",
]

# Versions the snapshot shape riding the result frames; readers ignore
# snapshots from a future version instead of misparsing them.
SNAPSHOT_VERSION = 1

# Fixed log-scale boundaries: powers of two from ~1 microsecond to
# ~17 minutes. Shared, immutable boundaries are what make merged
# histograms deterministic — every process buckets identically.
DEFAULT_BUCKETS = tuple(2.0 ** exponent for exponent in range(-20, 11))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def payload(self) -> dict:
        return {"value": self.value}

    def absorb(self, payload: dict) -> None:
        self.value += int(payload.get("value", 0))

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time level (queue depth, inflight sessions)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def payload(self) -> dict:
        return {"value": self.value}

    def absorb(self, payload: dict) -> None:
        # ``max`` keeps the merge commutative across arbitrary frame
        # arrival orders (a last-write-wins gauge would depend on which
        # worker's snapshot landed last).
        self.value = max(self.value, float(payload.get("value", 0.0)))

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """A distribution over fixed log-scale buckets.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; the
    final bucket is +Inf. Fixed boundaries mean two histograms of the
    same name merge by plain per-bucket addition.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def payload(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def absorb(self, payload: dict) -> None:
        counts = payload.get("counts")
        if not isinstance(counts, list) or len(counts) != len(self.counts):
            return  # foreign boundary scheme; refuse a lossy merge
        for index, bucket in enumerate(counts):
            self.counts[index] += int(bucket)
        self.total += float(payload.get("sum", 0.0))
        self.count += int(payload.get("count", 0))

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """The per-process instrument map, with snapshot/merge/render."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # instrument handles
    # ------------------------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = cls(**kwargs)
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).kind}, not {cls.kind}")
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    # ------------------------------------------------------------------
    # snapshot / drain / merge
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as one canonical-ordering JSON document."""
        with self._lock:
            entries = [
                {
                    "name": name,
                    "labels": {k: v for k, v in label_key},
                    "kind": instrument.kind,
                    **instrument.payload(),
                }
                for (name, label_key), instrument
                in sorted(self._instruments.items())
            ]
        return {"version": SNAPSHOT_VERSION, "metrics": entries}

    def drain(self) -> dict:
        """Snapshot, then zero every instrument — the worker-side half
        of frame-borne merging (each result frame carries only the
        deltas since the previous one, so the coordinator never
        double-counts)."""
        snapshot = self.snapshot()
        with self._lock:
            for instrument in self._instruments.values():
                instrument.reset()
        return snapshot

    def merge(self, snapshot: dict | None) -> None:
        """Absorb a snapshot from another process (or an older drain).

        Unknown versions, kinds, and malformed entries are skipped —
        a telemetry frame must never be able to crash the coordinator.
        """
        if not isinstance(snapshot, dict):
            return
        if snapshot.get("version") != SNAPSHOT_VERSION:
            return
        for entry in snapshot.get("metrics", []):
            if not isinstance(entry, dict):
                continue
            cls = _KINDS.get(entry.get("kind"))
            name = entry.get("name")
            labels = entry.get("labels", {})
            if cls is None or not isinstance(name, str) \
                    or not isinstance(labels, dict):
                continue
            kwargs = {}
            if cls is Histogram:
                bounds = entry.get("bounds")
                if not isinstance(bounds, list):
                    continue
                kwargs["bounds"] = tuple(float(b) for b in bounds)
            try:
                instrument = self._get(cls, name, labels, **kwargs)
            except TypeError:
                continue  # kind collision: keep the local instrument
            instrument.absorb(entry)

    def reset(self) -> None:
        """Drop every instrument (tests and benches start clean)."""
        with self._lock:
            self._instruments.clear()

    # ------------------------------------------------------------------
    # expositions
    # ------------------------------------------------------------------

    def render_json(self) -> str:
        """Canonical-JSON exposition (sorted keys, no whitespace)."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the current snapshot."""
        lines: list[str] = []
        for entry in self.snapshot()["metrics"]:
            name = entry["name"]
            labels = entry["labels"]
            kind = entry["kind"]
            lines.append(f"# TYPE {name} {kind}")
            if kind == "histogram":
                cumulative = 0
                bounds = list(entry["bounds"]) + ["+Inf"]
                for bound, bucket in zip(bounds, entry["counts"]):
                    cumulative += bucket
                    le = bound if isinstance(bound, str) else repr(bound)
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text(labels, le=le)} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_text(labels)} {entry['sum']}")
                lines.append(
                    f"{name}_count{_label_text(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_label_text(labels)} {entry['value']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: dict, **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


# The per-process registry every instrumented module shares.
REGISTRY = MetricsRegistry()
