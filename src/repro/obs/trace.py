"""repro.obs.trace — deterministic spans and the sidecar TraceStore.

Tracing is **off by default** and enabled with ``REPRO_TRACE=1``; when
off, :func:`span` returns a shared no-op context manager and the hot
paths pay one env lookup. When on, every entered span records:

* a **deterministic identity** — trace ids derive from the campaign
  fingerprint and span ids from (trace id, parent id, name, sibling
  ordinal), never from the wall clock or ``random``, so re-running the
  same campaign yields the same tree shape with the same ids;
* **monotonic timing** — ``time.monotonic()`` start/duration, never
  wall-clock, so DET103 stays satisfied at every instrumentation site;
* a **site** label (coordinator / worker / daemon) so a stitched tree
  shows which process ran each stage.

Spans live in a per-process :class:`TraceBuffer` and are published as
JSONL sidecar files through :mod:`repro.runtime.atomicio` into a
fingerprint-namespaced :class:`TraceStore` — never into checkpoints,
journals, or digests, which is what keeps logbook bytes identical with
tracing on or off (the equivalence harness proves it).

Cross-process stitching rides the existing frames: a *versioned*
``trace_context`` (``{"version", "trace_id", "span_id"}``) travels in
lease and submit messages as an optional key, workers adopt it, and
their drained spans return beside the checkpoint payload on result
frames — exactly the backward-compatible optional-key upgrade the
heartbeat and politeness fields already use.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path

__all__ = [
    "BUFFER",
    "Span",
    "TraceBuffer",
    "TraceStore",
    "TRACE_CONTEXT_VERSION",
    "TRACE_ENV_DIR",
    "TRACE_ENV_FLAG",
    "adopt_trace_context",
    "configure_tracing",
    "current_trace_context",
    "drain_spans",
    "ingest_spans",
    "publish_trace",
    "span",
    "trace_dir_from_environment",
    "tracing_enabled",
]

# Versions the trace_context field on lease/submit frames; a reader
# refuses contexts from a future version rather than misstitching.
TRACE_CONTEXT_VERSION = 1
TRACE_ENV_FLAG = "REPRO_TRACE"
TRACE_ENV_DIR = "REPRO_TRACE_DIR"


def tracing_enabled() -> bool:
    """True when ``REPRO_TRACE=1`` — checked per span so tests can
    flip the flag without reimports."""
    return os.environ.get(TRACE_ENV_FLAG) == "1"


def trace_dir_from_environment() -> Path | None:
    """The sidecar root from ``REPRO_TRACE_DIR``, if set."""
    value = os.environ.get(TRACE_ENV_DIR)
    return Path(value) if value else None


def _digest(payload: dict) -> str:
    # Local canonical-JSON digest: obs stays dependency-free so any
    # module (including runtime.cache itself) can import it.
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def derive_trace_id(fingerprint: str) -> str:
    return _digest({"kind": "trace", "fingerprint": fingerprint})[:32]


def derive_span_id(trace_id: str, parent_id: str, name: str,
                   ordinal: int) -> str:
    return _digest({"kind": "span", "trace": trace_id,
                    "parent": parent_id, "name": name,
                    "ordinal": ordinal})[:16]


class Span:
    """One traced operation.

    A span only becomes real when *entered* — identity, parenting, and
    timing are assigned in ``__enter__`` so the sibling ordinal counts
    entered spans only. Creating one without ``with`` therefore leaks
    an un-closed, never-recorded span; lint rule OBS501 flags it.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id",
                 "_buffer", "_start")

    def __init__(self, buffer: "TraceBuffer", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id = ""
        self._buffer = buffer
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._buffer._enter(self)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.monotonic() - self._start
        self._buffer._exit(self, duration, failed=exc_type is not None)
        return False


class _NoopSpan:
    """The disabled-path span: enter/exit do nothing, attrs accepted."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: dict = {}

    span_id = ""
    parent_id = ""
    name = ""

    def __enter__(self) -> "_NoopSpan":
        self.attrs.clear()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopSpan()


class TraceBuffer:
    """The per-process span accumulator.

    Holds the trace identity (fingerprint → trace id, or an adopted
    remote context), a per-thread span stack for parenting, and the
    finished-span records until they are drained onto a result frame
    or published to the :class:`TraceStore`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._records: list[dict] = []
        self._ordinals: dict[str, int] = {}
        self.trace_id: str | None = None
        self.fingerprint: str | None = None
        self.site = "main"
        self._adopted_parent: str | None = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    def configure(self, fingerprint: str, site: str | None = None) -> None:
        """Bind the buffer to a campaign fingerprint.

        A *new* fingerprint resets the span state (records, ordinals)
        so back-to-back campaigns in one process don't bleed spans
        into each other's sidecars. An adopted remote context survives
        configuration — the daemon adopts a submitter's context first,
        then the executor configures the campaign fingerprint, and the
        spans must still stitch under the submitter's trace.
        """
        with self._lock:
            if fingerprint != self.fingerprint:
                self._records.clear()
                self._ordinals.clear()
                self.fingerprint = fingerprint
                if self._adopted_parent is None:
                    self.trace_id = derive_trace_id(fingerprint)
            if site is not None:
                self.site = site

    def adopt(self, context: dict | None) -> bool:
        """Join a remote trace described by a ``trace_context`` field.

        Unknown shapes and future versions are ignored (the frame
        still decodes — the span tree just doesn't stitch), mirroring
        how old frames without the field keep working. A missing or
        invalid context also *clears* any prior adoption, so a stale
        parent from an earlier lease can never mis-stitch later spans.
        """
        valid = (isinstance(context, dict)
                 and context.get("version") == TRACE_CONTEXT_VERSION
                 and isinstance(context.get("trace_id"), str)
                 and isinstance(context.get("span_id"), str))
        with self._lock:
            if valid:
                self.trace_id = context["trace_id"]
                self._adopted_parent = context["span_id"]
            else:
                self._adopted_parent = None
                if self.fingerprint:
                    self.trace_id = derive_trace_id(self.fingerprint)
        return bool(valid)

    def current_context(self) -> dict | None:
        """The versioned context a frame should carry right now."""
        if self.trace_id is None:
            return None
        stack = self._stack()
        parent = stack[-1].span_id if stack else (self._adopted_parent or "")
        return {"version": TRACE_CONTEXT_VERSION,
                "trace_id": self.trace_id, "span_id": parent}

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def span(self, name: str, *, parent_id: str | None = None, **attrs):
        """A context-manager span, or the shared no-op when tracing is
        disabled or the buffer has no identity yet."""
        if not tracing_enabled() or self.trace_id is None:
            return _NOOP
        span_ = Span(self, name, attrs)
        if parent_id is not None:
            span_.parent_id = parent_id
        return span_

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span_: Span) -> None:
        stack = self._stack()
        if not span_.parent_id:
            if stack:
                span_.parent_id = stack[-1].span_id
            elif self._adopted_parent:
                span_.parent_id = self._adopted_parent
        with self._lock:
            ordinal = self._ordinals.get(span_.parent_id, 0)
            self._ordinals[span_.parent_id] = ordinal + 1
        span_.span_id = derive_span_id(self.trace_id or "",
                                       span_.parent_id, span_.name, ordinal)
        stack.append(span_)

    def _exit(self, span_: Span, duration: float, failed: bool) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        record = {
            "trace_id": self.trace_id,
            "span_id": span_.span_id,
            "parent_id": span_.parent_id,
            "name": span_.name,
            "site": self.site,
            "start": span_._start,
            "duration": duration,
        }
        if span_.attrs:
            record["attrs"] = dict(span_.attrs)
        if failed:
            record["error"] = True
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # movement
    # ------------------------------------------------------------------

    def drain(self) -> list[dict]:
        """Take (and clear) the finished spans — the worker-side half
        of frame-borne trace stitching."""
        with self._lock:
            records = self._records
            self._records = []
        return records

    def ingest(self, records) -> None:
        """Absorb spans drained from another process's frames."""
        if not isinstance(records, list):
            return
        with self._lock:
            self._records.extend(
                record for record in records
                if isinstance(record, dict) and record.get("span_id"))

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._records)


class TraceStore:
    """The trace sidecar: one JSONL file per publishing site, living
    in the campaign fingerprint's namespace under the trace root.

    Strictly a sidecar — nothing here is read back into any campaign
    output. The header line carries a wall-clock ``published_at`` for
    operators (licensed by the DET103 ``obs/`` allowlist; it never
    touches a digest).

    Deliberately *not* a :class:`~repro.runtime.storebase
    .FingerprintNamespacedStore` subclass, though it follows the same
    ``<root>/<fingerprint16>/`` layout: obs must be importable from
    the bottom of the stack (``runtime.cache`` and ``bqt.engine``
    import it), so it cannot import the runtime package at module
    scope. The atomic writer is borrowed lazily at publish time.
    """

    _NAMESPACE_DIGITS = 16

    def __init__(self, directory: str | Path, fingerprint: str):
        self._directory = Path(directory)
        self._fingerprint = fingerprint

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    @property
    def namespace_directory(self) -> Path:
        return self._directory / self._fingerprint[:self._NAMESPACE_DIGITS]

    def _site_path(self, site: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_" else "-"
                       for c in site) or "site"
        return self.namespace_directory / f"trace-{safe}.jsonl"

    def save_trace(self, site: str, records: list[dict]) -> Path:
        """Publish ``records`` for ``site``, merged with any spans the
        site already published (so a resumed campaign accumulates)."""
        from repro.runtime.atomicio import atomic_write_text

        path = self._site_path(site)
        combined = self._load_file(path) + list(records)
        header = {
            "fingerprint": self.fingerprint,
            "site": site,
            "spans": len(combined),
            "published_at": time.time(),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True)
                     for record in combined)
        self.namespace_directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, "\n".join(lines) + "\n")
        return path

    @staticmethod
    def _load_file(path: Path) -> list[dict]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return []
        records: list[dict] = []
        for index, line in enumerate(text.splitlines()):
            if index == 0:
                continue  # header
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail or damage: keep what parses
            if isinstance(record, dict) and record.get("span_id"):
                records.append(record)
        return records

    def load_spans(self) -> list[dict]:
        """Every span every site published for this fingerprint."""
        if not self.namespace_directory.is_dir():
            return []
        records: list[dict] = []
        for path in sorted(self.namespace_directory.glob("trace-*.jsonl")):
            records.extend(self._load_file(path))
        return records


# The per-process buffer every instrumented module shares.
BUFFER = TraceBuffer()


def span(name: str, *, parent_id: str | None = None, **attrs):
    """Module-level convenience over :attr:`BUFFER`."""
    return BUFFER.span(name, parent_id=parent_id, **attrs)


def configure_tracing(fingerprint: str, site: str | None = None) -> None:
    BUFFER.configure(fingerprint, site=site)


def current_trace_context() -> dict | None:
    if not tracing_enabled():
        return None
    return BUFFER.current_context()


def adopt_trace_context(context: dict | None) -> bool:
    if not tracing_enabled():
        return False
    return BUFFER.adopt(context)


def drain_spans() -> list[dict]:
    return BUFFER.drain()


def ingest_spans(records) -> None:
    BUFFER.ingest(records)


def publish_trace(directory: str | Path | None = None,
                  fingerprint: str | None = None) -> Path | None:
    """Drain the buffer into the sidecar store, if there is anywhere
    to publish: an explicit directory, else ``REPRO_TRACE_DIR``."""
    root = Path(directory) if directory else trace_dir_from_environment()
    fingerprint = fingerprint or BUFFER.fingerprint
    if root is None or not fingerprint:
        return None
    records = BUFFER.drain()
    if not records:
        return None
    store = TraceStore(root, fingerprint)
    return store.save_trace(BUFFER.site, records)
