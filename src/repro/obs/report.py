"""repro.obs.report — span-tree assembly, rendering, critical path.

Operates on the plain span records :mod:`repro.obs.trace` produces
(buffered, frame-borne, or loaded back from a :class:`TraceStore`
sidecar). Monotonic starts are only comparable *within* a site, so
ordering falls back to (site, start, span id) — deterministic for a
recorded trace, and parent links (the part that matters for the tree
and the critical path) are site-independent.
"""

from __future__ import annotations

__all__ = ["build_tree", "critical_path", "render_tree", "self_seconds"]


def _sort_key(record: dict) -> tuple:
    return (str(record.get("site", "")),
            float(record.get("start", 0.0)),
            str(record.get("span_id", "")))


def build_tree(records: list[dict]):
    """``(roots, children)`` — children keyed by parent span id.

    A span whose parent is unknown (lost frame, killed worker) becomes
    a root rather than disappearing: a damaged trace degrades to a
    forest, never to silence.
    """
    ordered = sorted((r for r in records
                      if isinstance(r, dict) and r.get("span_id")),
                     key=_sort_key)
    known = {record["span_id"] for record in ordered}
    roots: list[dict] = []
    children: dict[str, list[dict]] = {}
    for record in ordered:
        parent = record.get("parent_id") or ""
        if parent and parent in known:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)
    return roots, children


def self_seconds(record: dict, children: dict[str, list[dict]]) -> float:
    """Duration minus direct children's durations, floored at zero
    (children on another site can overlap their parent's clock)."""
    duration = float(record.get("duration", 0.0))
    nested = sum(float(child.get("duration", 0.0))
                 for child in children.get(record["span_id"], []))
    return max(0.0, duration - nested)


def _format_span(record: dict, children) -> str:
    name = record.get("name", "?")
    site = record.get("site", "")
    duration = float(record.get("duration", 0.0))
    self_time = self_seconds(record, children)
    attrs = record.get("attrs") or {}
    attr_text = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    parts = [f"{name} [{site}]",
             f"{duration * 1000:.1f}ms",
             f"self {self_time * 1000:.1f}ms"]
    if attr_text:
        parts.append(attr_text)
    if record.get("error"):
        parts.append("ERROR")
    return "  ".join(parts)


def render_tree(records: list[dict]) -> str:
    """The stitched span forest as an indented text tree."""
    roots, children = build_tree(records)
    if not roots:
        return "(no spans)"
    lines: list[str] = []

    def walk(record: dict, prefix: str, connector: str) -> None:
        lines.append(prefix + connector + _format_span(record, children))
        if connector == "├─ ":
            child_prefix = prefix + "│  "
        elif connector == "└─ ":
            child_prefix = prefix + "   "
        else:
            child_prefix = prefix
        kids = children.get(record["span_id"], [])
        for index, child in enumerate(kids):
            walk(child, child_prefix,
                 "└─ " if index == len(kids) - 1 else "├─ ")

    for root in roots:
        walk(root, "", "")
    return "\n".join(lines)


def critical_path(records: list[dict], top: int = 5) -> list[dict]:
    """The top-``top`` spans of the dominant root-to-leaf chain.

    Descends from the longest root through each level's
    longest-duration child, then ranks the chain's spans by self-time
    — "where did the campaign actually spend its wall clock".
    """
    roots, children = build_tree(records)
    if not roots:
        return []
    path: list[dict] = []
    node = max(roots, key=lambda r: float(r.get("duration", 0.0)))
    while node is not None:
        path.append(node)
        kids = children.get(node["span_id"], [])
        node = max(kids, key=lambda r: float(r.get("duration", 0.0))) \
            if kids else None
    ranked = sorted(path, key=lambda r: self_seconds(r, children),
                    reverse=True)
    return ranked[:max(1, top)]
