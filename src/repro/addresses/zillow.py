"""The Zillow-like residential address feed.

The paper obtains non-CAF residential addresses from a private Zillow
dataset under a data-use agreement (Section 3.3). This class is the
synthetic stand-in: given a world's census blocks it can enumerate the
residential addresses in a block that are *not* CAF-certified — exactly
the lookup the Q3 collection performs ("we enumerate all CAF addresses
from the USAC dataset and non-CAF addresses from a dataset of
residential addresses provided by Zillow").
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.addresses.models import StreetAddress

__all__ = ["ZillowFeed"]


class ZillowFeed:
    """An indexed collection of residential addresses."""

    def __init__(self, addresses: Iterable[StreetAddress]):
        self._by_block: dict[str, list[StreetAddress]] = {}
        self._by_id: dict[str, StreetAddress] = {}
        for address in addresses:
            if address.address_id in self._by_id:
                raise ValueError(f"duplicate address id {address.address_id!r}")
            self._by_id[address.address_id] = address
            self._by_block.setdefault(address.block_geoid, []).append(address)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, address_id: str) -> bool:
        return address_id in self._by_id

    def lookup(self, address_id: str) -> StreetAddress:
        """Return the address with ``address_id``."""
        try:
            return self._by_id[address_id]
        except KeyError:
            raise KeyError(f"unknown address id {address_id!r}") from None

    def in_block(self, block_geoid: str) -> list[StreetAddress]:
        """All feed addresses in a census block (empty list if none)."""
        return list(self._by_block.get(block_geoid, []))

    def non_caf_in_block(self, block_geoid: str) -> list[StreetAddress]:
        """Non-CAF feed addresses in a census block."""
        return [a for a in self.in_block(block_geoid) if not a.is_caf]

    def blocks(self) -> list[str]:
        """Block GEOIDs with at least one address, sorted."""
        return sorted(self._by_block)

    @staticmethod
    def merge(feeds: Iterable["ZillowFeed"]) -> "ZillowFeed":
        """Combine several per-state feeds into one."""
        combined: list[StreetAddress] = []
        for feed in feeds:
            combined.extend(feed._by_id.values())
        return ZillowFeed(combined)

    def summary(self) -> Mapping[str, int]:
        """Counts useful for logging: addresses, blocks, CAF/non-CAF."""
        caf = sum(1 for a in self._by_id.values() if a.is_caf)
        return {
            "addresses": len(self._by_id),
            "blocks": len(self._by_block),
            "caf": caf,
            "non_caf": len(self._by_id) - caf,
        }
