"""Street-address substrate.

The paper's datasets are keyed by residential street addresses: the
USAC CAF Map lists certified deployment addresses, and a Zillow feed
(obtained under a data-use agreement) supplies the *non-CAF* neighbor
addresses needed for the Q3 monopoly comparison. This package models
addresses, synthesizes realistic ones inside census blocks, and exposes
a :class:`~repro.addresses.zillow.ZillowFeed` that plays the role of
the paper's private Zillow dataset.
"""

from repro.addresses.models import StreetAddress
from repro.addresses.generator import AddressGenerator
from repro.addresses.zillow import ZillowFeed

__all__ = ["AddressGenerator", "StreetAddress", "ZillowFeed"]
