"""The street-address record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geometry import Point

__all__ = ["StreetAddress"]


@dataclass(frozen=True)
class StreetAddress:
    """A residential street address anchored to a census block.

    ``address_id`` is a stable opaque identifier unique within a world;
    ground truth (which ISP actually serves the address, at what plans)
    and query results are keyed by it. No PII is modeled — like the
    paper, the pipeline never needs occupant identity.
    """

    address_id: str
    house_number: int
    street_name: str
    city: str
    state_abbreviation: str
    zip_code: str
    block_geoid: str
    location: Point
    is_caf: bool

    def __post_init__(self) -> None:
        if self.house_number <= 0:
            raise ValueError(f"house number must be positive, got {self.house_number}")
        if len(self.block_geoid) != 15 or not self.block_geoid.isdigit():
            raise ValueError(f"bad block GEOID {self.block_geoid!r}")
        if len(self.zip_code) != 5 or not self.zip_code.isdigit():
            raise ValueError(f"bad ZIP code {self.zip_code!r}")

    @property
    def block_group_geoid(self) -> str:
        """GEOID of the containing census block group."""
        return self.block_geoid[:12]

    @property
    def state_fips(self) -> str:
        """FIPS code of the containing state."""
        return self.block_geoid[:2]

    @property
    def single_line(self) -> str:
        """The address formatted the way a user would type it into an
        ISP's storefront (the input BQT feeds the website form)."""
        return (f"{self.house_number} {self.street_name}, "
                f"{self.city}, {self.state_abbreviation} {self.zip_code}")
