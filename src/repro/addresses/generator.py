"""Synthesis of street addresses inside census blocks.

Addresses are generated per block with plausible US naming (numbered
house on a named road), jittered coordinates near the block centroid,
and a ZIP derived from the county. Generation is deterministic per
``(seed, block_geoid)`` so re-building a world yields identical
addresses regardless of iteration order.
"""

from __future__ import annotations

import numpy as np

from repro.addresses.models import StreetAddress
from repro.geo.entities import CensusBlock
from repro.geo.fips import state_by_fips
from repro.geo.geometry import Point
from repro.stats.distributions import stable_rng

__all__ = ["AddressGenerator", "STREET_STEMS", "STREET_SUFFIXES"]

STREET_STEMS = (
    "Oak", "Maple", "Cedar", "Pine", "Walnut", "Elm", "Hickory", "Willow",
    "Dogwood", "Magnolia", "Sycamore", "Chestnut", "Juniper", "Laurel",
    "Meadow", "Prairie", "Ridge", "Valley", "Creek", "River", "Lake",
    "Spring", "Orchard", "Mill", "Church", "School", "Depot", "Quarry",
    "County Line", "Old Post", "Stage Coach", "Turkey Hollow", "Fox Run",
    "Deer Trail", "Clover", "Hawthorn", "Birch", "Aspen", "Poplar", "Sumac",
)

STREET_SUFFIXES = ("Rd", "Ln", "Dr", "St", "Ave", "Ct", "Way", "Trl", "Hwy", "Pl")


class AddressGenerator:
    """Deterministic per-block address factory."""

    def __init__(self, seed: int = 0):
        self._seed = seed

    def street_name(self, rng: np.random.Generator) -> str:
        """Draw a street name like ``"Cedar Ridge Rd"``."""
        stem = STREET_STEMS[int(rng.integers(len(STREET_STEMS)))]
        suffix = STREET_SUFFIXES[int(rng.integers(len(STREET_SUFFIXES)))]
        return f"{stem} {suffix}"

    def _zip_for_block(self, block: CensusBlock, rng: np.random.Generator) -> str:
        # Derive a stable pseudo-ZIP from the county portion of the GEOID
        # so all blocks in a county share a small set of ZIPs.
        county_part = int(block.geoid[2:5])
        base = 10000 + (county_part * 37) % 89000
        return f"{base + int(rng.integers(0, 8)):05d}"

    def _city_for_block(self, block: CensusBlock) -> str:
        state = state_by_fips(block.state_fips)
        county_part = int(block.geoid[2:5])
        kind = "City" if not block.is_rural else "Township"
        return f"{state.name.split()[0]} {kind} {county_part}"

    def generate_for_block(
        self, block: CensusBlock, count: int, is_caf: bool, namespace: str
    ) -> list[StreetAddress]:
        """Generate ``count`` addresses inside ``block``.

        ``namespace`` separates CAF and non-CAF address populations in
        the same block (the world builder generates both): address ids
        and street layouts differ across namespaces but are stable
        within one.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = stable_rng(self._seed, "addr", namespace, block.geoid)
        num_streets = max(1, count // 12)
        streets = [self.street_name(rng) for _ in range(num_streets)]
        zip_code = self._zip_for_block(block, rng)
        city = self._city_for_block(block)
        addresses = []
        for index in range(count):
            street = streets[int(rng.integers(num_streets))]
            house_number = int(rng.integers(1, 9900))
            lon = block.centroid.longitude + float(rng.normal(0, 0.002))
            lat = block.centroid.latitude + float(rng.normal(0, 0.002))
            lon = float(np.clip(lon, -180.0, 180.0))
            lat = float(np.clip(lat, -90.0, 90.0))
            addresses.append(
                StreetAddress(
                    address_id=f"{namespace}-{block.geoid}-{index:05d}",
                    house_number=house_number,
                    street_name=street,
                    city=city,
                    state_abbreviation=state_by_fips(block.state_fips).abbreviation,
                    zip_code=zip_code,
                    block_geoid=block.geoid,
                    location=Point(lon, lat),
                    is_caf=is_caf,
                )
            )
        return addresses
