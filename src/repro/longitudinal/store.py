"""The panel store: wave manifests + per-cell logbooks on disk.

Each completed wave is published as one JSON document under the
panel's fingerprint-namespaced directory — the wave's per-cell record
streams (checkpoint codecs, exact float round-trip), its horizon, its
fresh/replayed accounting, and a SHA-256 checksum of the cell payload.
Writes use the shared atomic tmp-then-rename primitive, so a panel
interrupted mid-wave resumes from the last intact wave; a damaged or
foreign wave file is a miss (the wave recomputes), never a crash or a
silent wrong replay.

The layout mirrors :class:`~repro.runtime.checkpoint.CheckpointStore`:
``root/<fingerprint16>/wave-0003.json``, so several panels can share
one store root without clobbering each other.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.runtime.atomicio import atomic_write_text, sweep_stale_tmp_files
from repro.runtime.checkpoint import _shard_from_json, _shard_to_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.executor import ShardResult

__all__ = ["PanelStore"]

FORMAT_VERSION = 1
_NAMESPACE_DIGITS = 16


class PanelStore:
    """One panel campaign's persisted waves under a directory."""

    def __init__(self, directory: str | Path, fingerprint: str):
        self._directory = Path(directory)
        self._fingerprint = fingerprint

    @property
    def directory(self) -> Path:
        """The store root (shared across panels)."""
        return self._directory

    @property
    def panel_directory(self) -> Path:
        """This panel's namespaced subdirectory under the root."""
        return self._directory / self._fingerprint[:_NAMESPACE_DIGITS]

    @property
    def fingerprint(self) -> str:
        """The panel fingerprint these waves belong to."""
        return self._fingerprint

    def wave_path(self, wave: int) -> Path:
        """Path of one wave's document."""
        return self.panel_directory / f"wave-{wave:04d}.json"

    def save_wave(
        self,
        wave: int,
        horizon_years: int,
        cells: "ShardResult",
        counts: dict[str, int],
    ) -> Path:
        """Publish one completed wave atomically."""
        self.panel_directory.mkdir(parents=True, exist_ok=True)
        cell_payload = json.dumps(_shard_to_json(cells), sort_keys=True,
                                  separators=(",", ":"))
        document = {
            "format": FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "wave": wave,
            "horizon_years": horizon_years,
            "counts": counts,
            "cells_sha256": hashlib.sha256(
                cell_payload.encode("utf-8")).hexdigest(),
            "cells": cell_payload,
        }
        path = self.wave_path(wave)
        atomic_write_text(path, json.dumps(document, sort_keys=True))
        sweep_stale_tmp_files(self.panel_directory)
        return path

    def load_wave(
        self, wave: int
    ) -> "tuple[ShardResult, dict] | None":
        """Reload one wave: ``(cells, manifest)`` or ``None``.

        ``None`` covers every way the wave can be unusable — missing,
        torn, checksum-mismatched, foreign fingerprint, or written by
        an incompatible format version — so callers simply recompute.
        """
        path = self.wave_path(wave)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if (not isinstance(document, dict)
                or document.get("format") != FORMAT_VERSION
                or document.get("fingerprint") != self._fingerprint
                or document.get("wave") != wave):
            return None
        cell_payload = document.get("cells")
        if (not isinstance(cell_payload, str)
                or hashlib.sha256(cell_payload.encode("utf-8")).hexdigest()
                != document.get("cells_sha256")):
            return None
        try:
            cells = _shard_from_json(json.loads(cell_payload))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None
        manifest = {
            "wave": wave,
            "horizon_years": document.get("horizon_years"),
            "counts": dict(document.get("counts", {})),
        }
        return cells, manifest

    def waves(self) -> list[int]:
        """Indices of waves currently stored, sorted."""
        if not self.panel_directory.exists():
            return []
        indices = []
        for path in sorted(self.panel_directory.glob("wave-*.json")):
            try:
                indices.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return indices
