"""The panel store: a digest-keyed cell CAS + thin wave manifests.

Format 2 splits each wave document in two:

* **cell CAS** — every (ISP, CBG) cell's record stream and every Q3
  block's outcome is one JSON file under ``cells/``, named by the
  cell's *world digest* (:mod:`repro.longitudinal.digests`). Digest
  equality ⟺ record equality, so a cell unchanged across waves is
  stored once per **digest**, not once per wave: saving a wave writes
  only the churned cells' files — O(churn) bytes, the storage analogue
  of delta re-collection.
* **wave manifests** — ``wave-0003.json`` holds the wave's horizon and
  accounting plus an ordered list of ``(cell identity, digest)``
  references; loading a wave reassembles the
  :class:`~repro.runtime.executor.ShardResult` from the CAS in
  manifest order.

Every file is integrity-checked on load — cell payloads carry their
:func:`~repro.runtime.cache.content_digest`, manifests checksum their
reference list — and any damage (torn file, missing cell, foreign
fingerprint, skewed format) makes the wave a miss that recomputes,
never a crash or a silent wrong replay. Writes use the shared atomic
tmp-then-rename primitive. Format-1 wave documents (the pre-CAS
layout, whose ``cells`` payload was embedded as one double-encoded
JSON string) stay loadable read-only, so an existing panel upgrades
in place; new waves are always written as format 2.

Cell files can be orphaned — a crash between publishing a wave's CAS
entries and its manifest, a manifest damaged beyond recognition, or a
quarantined-and-unlinked entry's replacement racing a reader.
:meth:`PanelStore.sweep_unreferenced_cells` is the refcount-style
collector — it deletes exactly the cell files no intact manifest
references, so it is always safe to run, ``--resume`` included.
(Panels at different horizons have different fingerprints and thus
disjoint directories; they never share or orphan each other's cells.)

The layout mirrors :class:`~repro.runtime.checkpoint.CheckpointStore`:
``root/<fingerprint16>/...``, so several panels can share one store
root without clobbering each other.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.runtime.atomicio import (
    atomic_write_json,
    atomic_write_text,
    sweep_stale_tmp_files,
)
from repro.runtime.cache import content_digest
from repro.runtime.checkpoint import (
    _record_from_json,
    _record_to_json,
    _shard_from_json,
)
from repro.runtime.storebase import FingerprintNamespacedStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.longitudinal.digests import WaveDigests
    from repro.runtime.executor import ShardResult

__all__ = ["PanelStore"]

FORMAT_VERSION = 2
# Format-1 documents (one self-contained JSON per wave) load read-only.
_LEGACY_FORMAT_VERSION = 1
_CELLS_SUBDIR = "cells"


def _q12_payload(cell, records) -> dict:
    return {
        "kind": "q12",
        "isp_id": cell.isp_id,
        "state": cell.state,
        "cbg": cell.cbg,
        "records": [_record_to_json(r) for r in records],
    }


def _q3_payload(block: str, outcome) -> dict:
    return {
        "kind": "q3",
        "block_geoid": block,
        "outcome": None if outcome is None else {
            "incumbent_isp_id": outcome.incumbent_isp_id,
            "records": [_record_to_json(r) for r in outcome.records],
            "modes": outcome.modes,
        },
    }


def _q3_outcome_from_payload(payload: dict):
    from repro.core.collection import Q3BlockOutcome

    outcome = payload["outcome"]
    if outcome is None:
        return None
    return Q3BlockOutcome(
        block_geoid=payload["block_geoid"],
        incumbent_isp_id=outcome["incumbent_isp_id"],
        records=tuple(_record_from_json(r) for r in outcome["records"]),
        modes=dict(outcome["modes"]),
    )


class PanelStore(FingerprintNamespacedStore):
    """One panel campaign's persisted waves under a directory."""

    @property
    def panel_directory(self) -> Path:
        """This panel's namespaced subdirectory under the root."""
        return self.namespace_directory

    @property
    def cells_directory(self) -> Path:
        """The digest-keyed cell CAS under the panel directory."""
        return self.panel_directory / _CELLS_SUBDIR

    def wave_path(self, wave: int) -> Path:
        """Path of one wave's manifest."""
        return self.panel_directory / f"wave-{wave:04d}.json"

    def cell_path(self, digest: str) -> Path:
        """Path of one cell's CAS entry."""
        return self.cells_directory / f"{digest}.json"

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------

    def _publish_cell(self, digest: str, payload: dict) -> bool:
        """Write one CAS entry unless its digest is already present.

        Returns whether a file was written — the per-wave write cost
        is exactly the churned digests.
        """
        path = self.cell_path(digest)
        if path.exists():
            return False
        atomic_write_json(path, {
            "format": FORMAT_VERSION,
            "digest": digest,
            "payload_sha256": content_digest(payload),
            "payload": payload,
        })
        return True

    def save_wave(
        self,
        wave: int,
        horizon_years: int,
        cells: "ShardResult",
        counts: dict[str, int],
        digests: "WaveDigests",
    ) -> Path:
        """Publish one completed wave: new CAS entries, then the
        manifest (atomically) — a crash between the two leaves only
        unreferenced cell files, which the sweep reclaims."""
        self.cells_directory.mkdir(parents=True, exist_ok=True)
        q12_refs = []
        for cell, digest in digests.q12.items():
            self._publish_cell(digest,
                               _q12_payload(cell, cells.q12_records[cell]))
            q12_refs.append([cell.isp_id, cell.state, cell.cbg, digest])
        q3_refs = []
        for block, digest in digests.q3.items():
            self._publish_cell(digest,
                               _q3_payload(block, cells.q3_outcomes[block]))
            q3_refs.append([block, digest])
        refs = {"q12": q12_refs, "q3": q3_refs}
        document = {
            "format": FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "wave": wave,
            "horizon_years": horizon_years,
            "counts": counts,
            "cells_sha256": content_digest(refs),
            "cells": refs,
        }
        path = self.wave_path(wave)
        atomic_write_text(path, json.dumps(document, sort_keys=True))
        sweep_stale_tmp_files(self.panel_directory)
        sweep_stale_tmp_files(self.cells_directory)
        return path

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------

    def _load_manifest(self, wave: int) -> dict | None:
        """One wave's parsed manifest (format 1 or 2), or ``None``."""
        document = self._owned_document(self.wave_path(wave))
        if (document is None
                or document.get("format") not in (FORMAT_VERSION,
                                                  _LEGACY_FORMAT_VERSION)
                or document.get("wave") != wave):
            return None
        return document

    def _load_cell_payload(self, digest: str) -> dict | None:
        """One verified CAS payload, or ``None`` on any damage.

        A *present but damaged* entry is quarantined (unlinked) before
        returning the miss: ``_publish_cell`` skips digests whose file
        exists, so without the unlink a corrupted referenced entry
        would survive every recompute and force the wave to re-collect
        on every later resume, forever. Unlinking makes the usual
        miss-recompute-republish cycle heal the store instead. The
        quarantine only fires for files *claiming this format* that
        fail their checks (and torn non-JSON files, unreadable to any
        version) — an entry written by a newer format is a plain miss,
        so a version rollback never deletes the newer store.
        """
        path = self.cell_path(digest)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return None
        except json.JSONDecodeError:
            path.unlink(missing_ok=True)
            return None
        if (not isinstance(document, dict)
                or document.get("format") != FORMAT_VERSION):
            return None
        payload = document.get("payload")
        if (document.get("digest") != digest
                or not isinstance(payload, dict)
                or content_digest(payload) != document.get("payload_sha256")):
            path.unlink(missing_ok=True)
            return None
        return payload

    def _assemble_from_cas(self, document: dict) -> "ShardResult | None":
        from repro.runtime.executor import ShardResult
        from repro.runtime.shards import Q12Cell

        refs = document.get("cells")
        if (not isinstance(refs, dict)
                or content_digest(refs) != document.get("cells_sha256")):
            return None
        result = ShardResult(index=0, count=1)
        try:
            for isp_id, state, cbg, digest in refs["q12"]:
                payload = self._load_cell_payload(digest)
                if payload is None:
                    return None
                if (payload.get("kind") != "q12"
                        or (payload["isp_id"], payload["state"],
                            payload["cbg"]) != (isp_id, state, cbg)):
                    # Internally consistent but serving the wrong cell
                    # for its address: manifest/CAS skew. Quarantine it
                    # too, or the recompute's republish would skip the
                    # existing file and the wave could never heal.
                    self.cell_path(digest).unlink(missing_ok=True)
                    return None
                cell = Q12Cell(isp_id=isp_id, state=state, cbg=cbg)
                result.q12_records[cell] = tuple(
                    _record_from_json(r) for r in payload["records"])
            for block, digest in refs["q3"]:
                payload = self._load_cell_payload(digest)
                if payload is None:
                    return None
                if (payload.get("kind") != "q3"
                        or payload["block_geoid"] != block):
                    self.cell_path(digest).unlink(missing_ok=True)
                    return None
                result.q3_outcomes[block] = _q3_outcome_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        return result

    @staticmethod
    def _assemble_legacy(document: dict) -> "ShardResult | None":
        """Format 1: the whole wave embedded as one JSON *string* (the
        double-encoded pre-CAS layout), checksummed over those bytes."""
        cell_payload = document.get("cells")
        if (not isinstance(cell_payload, str)
                or hashlib.sha256(cell_payload.encode("utf-8")).hexdigest()
                != document.get("cells_sha256")):
            return None
        try:
            return _shard_from_json(json.loads(cell_payload))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def load_wave(
        self, wave: int
    ) -> "tuple[ShardResult, dict] | None":
        """Reload one wave: ``(cells, manifest)`` or ``None``.

        ``None`` covers every way the wave can be unusable — missing,
        torn, checksum-mismatched, foreign fingerprint, a missing or
        damaged CAS entry, or an unknown format version — so callers
        simply recompute.
        """
        document = self._load_manifest(wave)
        if document is None:
            return None
        if document["format"] == _LEGACY_FORMAT_VERSION:
            cells = self._assemble_legacy(document)
        else:
            cells = self._assemble_from_cas(document)
        if cells is None:
            return None
        manifest = {
            "wave": wave,
            "format": document["format"],
            "horizon_years": document.get("horizon_years"),
            "counts": dict(document.get("counts", {})),
        }
        return cells, manifest

    def waves(self) -> list[int]:
        """Indices of waves currently stored, sorted."""
        if not self.panel_directory.exists():
            return []
        indices = []
        for path in sorted(self.panel_directory.glob("wave-*.json")):
            try:
                indices.append(int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return indices

    # ------------------------------------------------------------------
    # garbage collection and accounting
    # ------------------------------------------------------------------

    def referenced_digests(self) -> set[str]:
        """Every digest some intact wave manifest references."""
        referenced: set[str] = set()
        for wave in self.waves():
            document = self._load_manifest(wave)
            if document is None or document["format"] != FORMAT_VERSION:
                continue
            refs = document.get("cells")
            if (not isinstance(refs, dict)
                    or content_digest(refs)
                    != document.get("cells_sha256")):
                continue
            referenced.update(ref[-1] for ref in refs.get("q12", ()))
            referenced.update(ref[-1] for ref in refs.get("q3", ()))
        return referenced

    def sweep_unreferenced_cells(self) -> list[str]:
        """Delete CAS entries no intact manifest references.

        The reference set is recomputed from the manifests on disk at
        sweep time, so the sweep can never strand a wave a later
        ``--resume`` will load — a digest is only reclaimed once no
        manifest (current horizons or not) still names it. Returns the
        digests removed.
        """
        if not self.cells_directory.exists():
            return []
        referenced = self.referenced_digests()
        removed = []
        for path in sorted(self.cells_directory.glob("*.json")):
            if path.stem in referenced:
                continue
            path.unlink(missing_ok=True)
            removed.append(path.stem)
        sweep_stale_tmp_files(self.cells_directory)
        return removed

    def total_bytes(self) -> int:
        """On-disk size of this panel's manifests and CAS entries."""
        if not self.panel_directory.exists():
            return 0
        total = 0
        for path in self.panel_directory.rglob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total
