"""repro.longitudinal — multi-wave panel campaigns over an evolving world.

The paper's audit is a one-shot snapshot; this subsystem re-runs it as
a *panel*: N churn waves over the same world, each wave planned as a
delta collection. Per-cell world digests (:mod:`~repro.longitudinal
.digests`) diff consecutive waves; unchanged (ISP, CBG) cells and Q3
blocks are replayed from the prior wave's logbook, changed cells are
re-queried through the ordinary :mod:`repro.runtime` backends, and the
merge produces wave logbooks byte-identical to from-scratch
re-collection — at O(churn) query cost instead of O(world). Completed
waves persist in a :class:`~repro.longitudinal.store.PanelStore` so an
interrupted panel resumes.

Entry points::

    from repro.longitudinal import PanelCampaign
    from repro.synth.churn import ChurnModel

    campaign = PanelCampaign(world, model=ChurnModel(cell_rate=0.1),
                             horizons=(1, 2, 3))
    for outcome in campaign.waves():
        print(outcome.wave, outcome.reuse_fraction)

or on the command line: ``caf-audit panel --waves 3``.
"""

from repro.longitudinal.campaign import (
    DEFAULT_PANEL_CHURN,
    PanelCampaign,
    WaveOutcome,
)
from repro.longitudinal.digests import (
    DeltaPlan,
    WaveDigests,
    compute_wave_digests,
    diff_digests,
    q12_cell_digest,
    q3_block_digest,
)
from repro.longitudinal.store import PanelStore

__all__ = [
    "DEFAULT_PANEL_CHURN",
    "DeltaPlan",
    "PanelCampaign",
    "PanelStore",
    "WaveDigests",
    "WaveOutcome",
    "compute_wave_digests",
    "diff_digests",
    "q12_cell_digest",
    "q3_block_digest",
]
