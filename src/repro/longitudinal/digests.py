"""Per-cell world digests: what a wave must re-query, cell by cell.

A campaign cell's record stream is deterministic in three inputs: the
world seed, the cell's addresses (static across waves — churn shares
geography and certification), and the ground truth at those addresses
(what the storefront will show). The first two never change between
panel waves, so hashing the third *per cell* yields a content address
with the property the delta planner needs:

    digest(wave k, cell) == digest(wave k-1, cell)
        ⟹  the cell's records at wave k are byte-identical to wave k-1

and the prior wave's logbook can be replayed instead of re-queried.
The digests deliberately cover the *whole* cell's truth — selected,
reserve, and unsampled addresses alike — because replacement draws can
reach any reserve address; over-approximating "changed" costs a
redundant re-query, never a stale replay.

Serialization reuses the checkpoint codec's plan JSON, whose floats
round-trip by shortest ``repr`` — so digest equality really is truth
equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.collection import q3_block_candidates
from repro.isp.deployment import ServiceTruth
from repro.runtime.cache import content_digest
from repro.runtime.checkpoint import _plan_to_json
from repro.runtime.shards import DEFAULT_ISPS, Q12Cell, enumerate_q12_cells
from repro.synth.world import World

__all__ = [
    "DeltaPlan",
    "WaveDigests",
    "compute_wave_digests",
    "diff_digests",
    "q12_cell_digest",
    "q3_block_digest",
]


def _truth_digest_payload(truth: ServiceTruth) -> dict:
    # One-way by design: this feeds content_digest, nothing decodes it
    # (hence not named *_to_json — there is deliberately no inverse).
    return {
        "serves": truth.serves,
        "plans": [_plan_to_json(plan) for plan in truth.plans],
        "existing_subscriber": truth.existing_subscriber,
        "tier_label": truth.tier_label,
    }


def q12_cell_digest(world: World, cell: Q12Cell, addresses=None) -> str:
    """Content address of one Q1/Q2 cell's query-relevant world state.

    ``addresses`` (the cell's CAF addresses, in canonical order) may be
    passed to amortize the per-(ISP, state) grouping across a state's
    cells; it defaults to the world's own lookup.
    """
    if addresses is None:
        addresses = world.caf_addresses_by_cbg(
            cell.isp_id, cell.state)[cell.cbg]
    truth = world.ground_truth
    payload = {
        "isp": cell.isp_id,
        "cbg": cell.cbg,
        "truths": [
            [address.address_id,
             _truth_digest_payload(truth.truth_for(cell.isp_id, address.address_id))]
            for address in addresses
        ],
    }
    return content_digest(payload)


def q3_block_digest(world: World, block_geoid: str) -> str:
    """Content address of one Q3 block's query-relevant world state.

    Covers the incumbent's truth at every CAF and non-CAF address in
    the block, and the cable ISP's truth at the non-CAF addresses —
    exactly the pairs :func:`repro.core.collection.run_q3_block` can
    query.
    """
    competition = world.block_competition[block_geoid]
    incumbent = competition.incumbent_isp_id
    cable = competition.cable_isp_id
    caf = world.caf_addresses_in_block(incumbent, block_geoid)
    non_caf = world.zillow.non_caf_in_block(block_geoid)
    truth = world.ground_truth
    payload = {
        "block": block_geoid,
        "incumbent": incumbent,
        "cable": cable,
        "incumbent_truths": [
            [address.address_id,
             _truth_digest_payload(truth.truth_for(incumbent, address.address_id))]
            for address in (*caf, *non_caf)
        ],
        "cable_truths": [
            [address.address_id,
             _truth_digest_payload(truth.truth_for(cable, address.address_id))]
            for address in non_caf
        ] if cable is not None else [],
    }
    return content_digest(payload)


@dataclass
class WaveDigests:
    """One wave's per-cell digests, keyed in canonical campaign order."""

    q12: dict[Q12Cell, str] = field(default_factory=dict)
    q3: dict[str, str] = field(default_factory=dict)

    @property
    def total_cells(self) -> int:
        return len(self.q12) + len(self.q3)


def compute_wave_digests(
    world: World,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
) -> WaveDigests:
    """Digest every campaign cell of ``world``, in canonical order."""
    digests = WaveDigests()
    grouped: dict[tuple[str, str], dict] = {}
    for cell in enumerate_q12_cells(world, isps=isps, states=states):
        key = (cell.isp_id, cell.state)
        if key not in grouped:
            grouped[key] = world.caf_addresses_by_cbg(*key)
        digests.q12[cell] = q12_cell_digest(world, cell,
                                            grouped[key][cell.cbg])
    for block_geoid in q3_block_candidates(world, states=q3_states):
        digests.q3[block_geoid] = q3_block_digest(world, block_geoid)
    return digests


@dataclass(frozen=True)
class DeltaPlan:
    """What one wave must re-query vs replay, in canonical order."""

    changed_q12: tuple[Q12Cell, ...]
    changed_q3: tuple[str, ...]
    total_q12: int
    total_q3: int

    @property
    def replayed_q12(self) -> int:
        return self.total_q12 - len(self.changed_q12)

    @property
    def replayed_q3(self) -> int:
        return self.total_q3 - len(self.changed_q3)

    @property
    def requery_fraction(self) -> float:
        """Share of all cells this wave re-queries (1.0 = from scratch)."""
        total = self.total_q12 + self.total_q3
        if total == 0:
            return 0.0
        return (len(self.changed_q12) + len(self.changed_q3)) / total

    @property
    def is_empty(self) -> bool:
        return not self.changed_q12 and not self.changed_q3


def diff_digests(prior: WaveDigests | None,
                 current: WaveDigests) -> DeltaPlan:
    """Plan the delta collection: cells whose digest moved since
    ``prior`` (or every cell, when there is no prior wave)."""
    if prior is None:
        changed_q12 = tuple(current.q12)
        changed_q3 = tuple(current.q3)
    else:
        changed_q12 = tuple(cell for cell, digest in current.q12.items()
                            if prior.q12.get(cell) != digest)
        changed_q3 = tuple(block for block, digest in current.q3.items()
                           if prior.q3.get(block) != digest)
    return DeltaPlan(
        changed_q12=changed_q12,
        changed_q3=changed_q3,
        total_q12=len(current.q12),
        total_q3=len(current.q3),
    )
