"""Multi-wave panel campaigns with delta-aware incremental re-collection.

The paper's audit is a one-shot snapshot (its Appendix 8.1 concedes the
staleness); a :class:`PanelCampaign` turns it into a *panel* — the same
audit repeated over an evolving world, the longitudinal methodology of
classic multi-year measurement studies. Each wave:

1. **evolves** the world to its horizon (:func:`repro.synth.churn
   .churned_world` — a Markov chain in the year index, so wave k is
   the continuation of wave k-1's trajectory);
2. **plans a delta**: every (ISP, CBG) cell and Q3 block is digested
   (:mod:`repro.longitudinal.digests`) and diffed against the prior
   wave — unchanged cells will be *replayed* from the prior wave's
   per-cell logbook, changed cells re-queried;
3. **executes** the changed cells through the ordinary runtime
   dispatcher (:func:`repro.runtime.executor.dispatch_shards` — every
   backend: serial, process, async, distributed; per-wave shard
   checkpoints and ``resume``), shipping workers a
   :class:`~repro.synth.churn.WaveScenario` so they can rebuild the
   evolved world;
4. **merges** replayed + fresh cells through the runtime's canonical
   merge, producing a wave logbook byte-identical to a from-scratch
   re-collection of the evolved world (enforced by
   ``tests/harness/equivalence.py``'s panel scenario).

Because only changed cells are queried, a wave in which c% of cells
churned costs O(c% of the campaign) instead of O(campaign) — the
re-audit is O(churn), not O(world).

Wave 0 is the snapshot: a full collection (its delta is "everything
changed"). A :class:`~repro.longitudinal.store.PanelStore` persists
each wave's cells, so an interrupted panel resumes from the last
intact wave.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

from repro.bqt.engine import EngineConfig
from repro.core.collection import CollectionResult, Q3Collection
from repro.core.sampling import SamplingPolicy
from repro.longitudinal.digests import (
    DeltaPlan,
    WaveDigests,
    compute_wave_digests,
    diff_digests,
)
from repro.longitudinal.store import PanelStore
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import (
    configure_tracing,
    publish_trace,
    span,
    trace_dir_from_environment,
    tracing_enabled,
)
from repro.runtime.cache import content_digest
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import (
    RuntimeConfig,
    ShardResult,
    dispatch_shards,
    run_shard,
)
from repro.runtime.merge import merge_shard_results
from repro.runtime.shards import DEFAULT_ISPS, ShardSpec, deal_shards
from repro.synth.churn import ChurnModel, WaveScenario, churned_world
from repro.synth.world import World

__all__ = ["DEFAULT_PANEL_CHURN", "PanelCampaign", "WaveOutcome"]

# Panel default: spatially correlated churn — 10% of (ISP, CBG) cells
# churn per year, per-address drift inside them. This is the regime
# where incremental re-collection pays (~10x less querying per wave).
DEFAULT_PANEL_CHURN = ChurnModel(cell_rate=0.10)


@dataclass
class WaveOutcome:
    """Everything one wave produced."""

    wave: int
    horizon_years: int
    world: World = field(repr=False)
    digests: WaveDigests = field(repr=False)
    delta: DeltaPlan
    # Per-cell record streams, the replay source for the next wave.
    cells: ShardResult = field(repr=False)
    collection: CollectionResult = field(repr=False)
    q3: Q3Collection = field(repr=False)
    fresh_q12: int = 0
    replayed_q12: int = 0
    fresh_q3: int = 0
    replayed_q3: int = 0
    restored_from_store: bool = False
    evolve_seconds: float = 0.0
    digest_seconds: float = 0.0
    collect_seconds: float = 0.0

    @property
    def elapsed_seconds(self) -> float:
        """The wave's total cost on this host."""
        return self.evolve_seconds + self.digest_seconds + self.collect_seconds

    @property
    def reuse_fraction(self) -> float:
        """Share of cells replayed instead of re-queried."""
        total = (self.fresh_q12 + self.replayed_q12
                 + self.fresh_q3 + self.replayed_q3)
        if total == 0:
            return 0.0
        return (self.replayed_q12 + self.replayed_q3) / total


class PanelCampaign:
    """A multi-wave audit panel over one evolving world.

    ``horizons`` lists each wave's distance from the snapshot in
    years, strictly increasing (``(1, 2, 3)`` is an annual 3-wave
    panel; ``(1, 3)`` skips a year — deltas are planned against the
    previous *wave*, whatever its horizon). ``runtime`` selects how
    changed cells are executed (``None``: in-process serial); its
    ``checkpoint_dir``/``resume`` give each wave's delta collection
    crash-safe shard checkpoints. ``store_dir`` persists completed
    waves (see :class:`~repro.longitudinal.store.PanelStore`);
    with ``resume=True`` intact stored waves are replayed wholesale.
    """

    def __init__(
        self,
        world: World,
        model: ChurnModel | None = None,
        horizons: tuple[int, ...] = (1, 2, 3),
        runtime: RuntimeConfig | None = None,
        policy: SamplingPolicy | None = None,
        engine_config: EngineConfig | None = None,
        max_replacements: int = 2,
        isps: tuple[str, ...] = DEFAULT_ISPS,
        states: tuple[str, ...] | None = None,
        q3_states: tuple[str, ...] | None = None,
        store_dir: str | None = None,
        resume: bool = False,
    ):
        if not horizons:
            raise ValueError("need at least one wave horizon")
        if any(h < 1 for h in horizons):
            raise ValueError("wave horizons are years after the snapshot "
                             "and must be positive")
        if list(horizons) != sorted(set(horizons)):
            raise ValueError("wave horizons must be strictly increasing")
        if resume and store_dir is None and (
                runtime is None or not runtime.resume):
            raise ValueError("resume requires a store_dir (or a runtime "
                             "with checkpoint resume)")
        self._world = world
        self._model = model or DEFAULT_PANEL_CHURN
        self._horizons = tuple(horizons)
        self._runtime = runtime
        self._policy = policy
        self._engine_config = engine_config
        self._max_replacements = max_replacements
        self._isps = isps
        self._states = states
        self._q3_states = q3_states
        self._resume = resume
        self._store = (PanelStore(store_dir, self.fingerprint)
                       if store_dir is not None else None)

    @property
    def horizons(self) -> tuple[int, ...]:
        """The wave horizons, years after the snapshot."""
        return self._horizons

    @property
    def world(self) -> World:
        """The snapshot world the panel evolves."""
        return self._world

    @property
    def store(self) -> PanelStore | None:
        """The panel store, when one was configured."""
        return self._store

    @property
    def fingerprint(self) -> str:
        """Content digest identifying this panel's replayable work.

        Everything that changes any wave's records feeds it: scenario
        (seed included), churn model, horizons, sampling policy, ISP
        and state subsets, and the replacement budget.
        """
        return content_digest({
            "format": 1,
            "scenario": asdict(self._world.config),
            "model": asdict(self._model),
            "horizons": list(self._horizons),
            "policy": asdict(self._policy or SamplingPolicy()),
            "isps": list(self._isps),
            "states": list(self._states or self._world.config.states),
            "q3_states": list(self._q3_states
                              or self._world.config.q3_states),
            "max_replacements": self._max_replacements,
        })

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------
    def waves(self) -> Iterator[WaveOutcome]:
        """Run the panel, yielding each wave as it completes."""
        if tracing_enabled():
            configure_tracing(self.fingerprint, site="coordinator")
        prior: WaveOutcome | None = None
        for wave, horizon in enumerate((0, *self._horizons)):
            outcome = self._run_wave(wave, horizon, prior)
            yield outcome
            prior = outcome
        if tracing_enabled():
            self._publish_trace()
        if self._store is not None:
            # Every wave's manifest is on disk: reclaim CAS entries
            # nothing references — crash leftovers (cells published,
            # manifest write never reached) and quarantined damage.
            # Digests are deterministic per (fingerprint, wave), so a
            # healthy store sweeps nothing.
            self._store.sweep_unreferenced_cells()

    def run(self) -> list[WaveOutcome]:
        """Run the panel to completion."""
        return list(self.waves())

    def _run_wave(self, wave: int, horizon: int,
                  prior: WaveOutcome | None) -> WaveOutcome:
        with span("panel.wave", wave=wave, horizon=horizon):
            return self._run_wave_inner(wave, horizon, prior)

    def _run_wave_inner(self, wave: int, horizon: int,
                        prior: WaveOutcome | None) -> WaveOutcome:
        started = time.perf_counter()
        with span("wave.evolve", wave=wave):
            if horizon == 0:
                world = self._world
            else:
                world = churned_world(self._world, years=horizon,
                                      model=self._model)
        evolved_at = time.perf_counter()
        with span("wave.digest", wave=wave):
            digests = compute_wave_digests(world, isps=self._isps,
                                           states=self._states,
                                           q3_states=self._q3_states)
            delta = diff_digests(prior.digests if prior else None, digests)
        digested_at = time.perf_counter()
        changed = len(delta.changed_q12) + len(delta.changed_q3)
        _METRICS.counter("panel_cells_changed_total").inc(changed)
        _METRICS.counter("panel_cells_replayed_total").inc(
            (delta.total_q12 + delta.total_q3) - changed)

        restored = None
        if self._store is not None and self._resume:
            restored = self._store.load_wave(wave)
        if restored is not None:
            cells, manifest = restored
            counts = manifest["counts"]
            fresh_q12 = int(counts.get("fresh_q12", 0))
            fresh_q3 = int(counts.get("fresh_q3", 0))
            _METRICS.counter("panel_waves_restored_total").inc()
        else:
            with span("wave.collect", wave=wave, changed=changed):
                fresh = self._collect_delta(world, wave, horizon, delta)
            cells = self._fold(digests, delta, fresh, prior)
            fresh_q12 = len(delta.changed_q12)
            fresh_q3 = len(delta.changed_q3)
            if self._store is not None:
                self._store.save_wave(wave, horizon, cells, {
                    "fresh_q12": fresh_q12,
                    "replayed_q12": delta.total_q12 - fresh_q12,
                    "fresh_q3": fresh_q3,
                    "replayed_q3": delta.total_q3 - fresh_q3,
                }, digests)
        with span("wave.merge", wave=wave):
            collection, q3 = self._merge(world, digests, cells)
        return WaveOutcome(
            wave=wave,
            horizon_years=horizon,
            world=world,
            digests=digests,
            delta=delta,
            cells=cells,
            collection=collection,
            q3=q3,
            fresh_q12=fresh_q12,
            replayed_q12=delta.total_q12 - fresh_q12,
            fresh_q3=fresh_q3,
            replayed_q3=delta.total_q3 - fresh_q3,
            restored_from_store=restored is not None,
            evolve_seconds=evolved_at - started,
            digest_seconds=digested_at - evolved_at,
            collect_seconds=time.perf_counter() - digested_at,
        )

    def _publish_trace(self) -> None:
        """Publish the panel's spans to the trace sidecar store.

        The root is ``REPRO_TRACE_DIR`` when set, else the runtime's
        checkpoint directory, else the panel store directory — spans
        land in a ``traces/`` sidecar, never in wave manifests.
        """
        root = trace_dir_from_environment()
        if root is None and self._runtime is not None \
                and self._runtime.checkpoint_dir is not None:
            root = Path(self._runtime.checkpoint_dir) / "traces"
        if root is None and self._store is not None:
            root = self._store.directory / "traces"
        publish_trace(root, self.fingerprint)

    def _wave_scenario(self, horizon: int):
        """The world recipe shipped to worker processes for one wave."""
        if horizon == 0:
            return self._world.config
        return WaveScenario(base=self._world.config, years=horizon,
                            model=self._model)

    def _collect_delta(self, world: World, wave: int, horizon: int,
                       delta: DeltaPlan) -> ShardResult:
        """Query the wave's changed cells; returns them as one result."""
        fresh = ShardResult(index=0, count=1)
        if delta.is_empty:
            return fresh
        scenario = self._wave_scenario(horizon)
        config = self._runtime
        if config is None:
            spec = ShardSpec(index=0, count=1,
                             q12_cells=delta.changed_q12,
                             q3_blocks=delta.changed_q3)
            return run_shard(scenario, spec, policy=self._policy,
                             engine_config=self._engine_config,
                             max_replacements=self._max_replacements,
                             world=world)
        specs = self._plan_delta_shards(delta, config.shards)
        completed: dict[int, ShardResult] = {}
        checkpoints: CheckpointStore | None = None
        if config.checkpoint_dir is not None:
            fingerprint = self._delta_fingerprint(scenario, delta,
                                                  len(specs))
            checkpoints = CheckpointStore(config.checkpoint_dir, fingerprint)
            if config.resume:
                completed = checkpoints.load_completed()
            else:
                checkpoints.clear()

        def on_complete(result: ShardResult) -> None:
            completed[result.index] = result
            if checkpoints is not None:
                checkpoints.save_shard(result)

        pending = [spec for spec in specs if spec.index not in completed]
        dispatch_shards(world, pending, config, on_complete,
                        policy=self._policy,
                        engine_config=self._engine_config,
                        max_replacements=self._max_replacements,
                        scenario=scenario)
        for result in completed.values():
            fresh.q12_records.update(result.q12_records)
            fresh.q3_outcomes.update(result.q3_outcomes)
        return fresh

    @staticmethod
    def _plan_delta_shards(delta: DeltaPlan,
                           shard_count: int) -> list[ShardSpec]:
        """Deal the changed cells round-robin, like the full planner."""
        count = max(1, min(shard_count,
                           len(delta.changed_q12) + len(delta.changed_q3)))
        return deal_shards(list(delta.changed_q12),
                           list(delta.changed_q3), count)

    def _delta_fingerprint(self, scenario, delta: DeltaPlan,
                           shard_count: int) -> str:
        """Checkpoint namespace for one wave's delta collection.

        Everything shaping the delta partition or its records feeds
        it — the wave recipe (base scenario, churn model, horizon),
        the changed-cell list, the policy, and the shard count — so a
        resumed wave can never adopt another wave's (or another
        delta's) shards.
        """
        return content_digest({
            "format": 1,
            "kind": "panel-wave-delta",
            "scenario": asdict(scenario),
            "policy": asdict(self._policy or SamplingPolicy()),
            "max_replacements": self._max_replacements,
            "shard_count": shard_count,
            "changed_q12": [[c.isp_id, c.state, c.cbg]
                            for c in delta.changed_q12],
            "changed_q3": list(delta.changed_q3),
        })

    def _fold(self, digests: WaveDigests, delta: DeltaPlan,
              fresh: ShardResult, prior: WaveOutcome | None) -> ShardResult:
        """Replayed + fresh cells, reassembled in canonical order."""
        changed_q12 = set(delta.changed_q12)
        changed_q3 = set(delta.changed_q3)
        folded = ShardResult(index=0, count=1)
        for cell in digests.q12:
            if cell in changed_q12:
                folded.q12_records[cell] = fresh.q12_records[cell]
            else:
                folded.q12_records[cell] = prior.cells.q12_records[cell]
        for block in digests.q3:
            if block in changed_q3:
                folded.q3_outcomes[block] = fresh.q3_outcomes[block]
            else:
                folded.q3_outcomes[block] = prior.cells.q3_outcomes[block]
        return folded

    def _merge(self, world: World, digests: WaveDigests,
               cells: ShardResult) -> tuple[CollectionResult, Q3Collection]:
        """The runtime's canonical merge over the folded wave cells."""
        spec = ShardSpec(index=0, count=1,
                         q12_cells=tuple(digests.q12),
                         q3_blocks=tuple(digests.q3))
        return merge_shard_results(
            world, [spec], {0: cells}, policy=self._policy,
            isps=self._isps, states=self._states,
            q3_states=self._q3_states,
        )
