"""FCC regulatory substrate.

Models the regulatory machinery the paper's analysis runs against:

* :mod:`repro.fcc.regulations` — the CAF II obligations: the 10/1 Mbps
  service floor, the "reasonably comparable rate" price test, and the
  ten-business-day deployment rule.
* :mod:`repro.fcc.urban_rate_survey` — the FCC's annual urban rate
  survey, from which the two-standard-deviation price benchmark (the
  ~$89/month cap for 10/1 Mbps in 2024) is derived.
* :mod:`repro.fcc.form477` — Form 477-style provider availability
  records at census-block granularity.
* :mod:`repro.fcc.broadband_map` — the National Broadband Map fabric;
  together with Form 477 it drives the paper's Q3 filter for census
  blocks served exclusively by the six BQT-supported ISPs.
"""

from repro.fcc.broadband_map import BroadbandMap, FabricRecord
from repro.fcc.form477 import AvailabilityRecord, Form477
from repro.fcc.regulations import (
    CAF_MAX_RATE_USD,
    CAF_MIN_DOWNLOAD_MBPS,
    CAF_MIN_UPLOAD_MBPS,
    DEPLOYMENT_WINDOW_BUSINESS_DAYS,
    CafObligations,
    plan_is_rate_compliant,
    plan_is_service_compliant,
)
from repro.fcc.urban_rate_survey import UrbanRateSurvey, generate_urban_rate_survey

__all__ = [
    "AvailabilityRecord",
    "BroadbandMap",
    "CAF_MAX_RATE_USD",
    "CAF_MIN_DOWNLOAD_MBPS",
    "CAF_MIN_UPLOAD_MBPS",
    "CafObligations",
    "DEPLOYMENT_WINDOW_BUSINESS_DAYS",
    "FabricRecord",
    "Form477",
    "UrbanRateSurvey",
    "generate_urban_rate_survey",
    "plan_is_rate_compliant",
    "plan_is_service_compliant",
]
