"""National Broadband Map fabric.

The National Broadband Map (NBM) is the FCC's address-level successor
to Form 477: a location "fabric" joined with provider availability
claims. The paper consults it alongside Form 477 when selecting Q3
census blocks. Here the fabric is derived from the same ground-truth
world the Form 477 records come from, and the two sources can be
cross-checked with :meth:`BroadbandMap.consistent_with_form477` — a
useful integrity test since real-world discrepancies between the two
datasets are themselves a known data-quality issue ([34] in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.fcc.form477 import Form477

__all__ = ["FabricRecord", "BroadbandMap"]


@dataclass(frozen=True)
class FabricRecord:
    """One serviceable location in the map fabric."""

    location_id: str
    block_geoid: str
    provider_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.block_geoid) != 15 or not self.block_geoid.isdigit():
            raise ValueError(f"bad block GEOID {self.block_geoid!r}")


class BroadbandMap:
    """Address-level availability fabric with block rollups."""

    def __init__(self, records: Iterable[FabricRecord] = ()):
        self._records: list[FabricRecord] = []
        self._by_block: dict[str, list[FabricRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: FabricRecord) -> None:
        """Append one fabric location."""
        self._records.append(record)
        self._by_block.setdefault(record.block_geoid, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    def providers_in_block(self, block_geoid: str) -> set[str]:
        """Union of providers over all fabric locations in a block."""
        providers: set[str] = set()
        for record in self._by_block.get(block_geoid, []):
            providers.update(record.provider_ids)
        return providers

    def locations_in_block(self, block_geoid: str) -> list[FabricRecord]:
        """All fabric locations in a block."""
        return list(self._by_block.get(block_geoid, []))

    def blocks(self) -> list[str]:
        """All fabric block GEOIDs, sorted."""
        return sorted(self._by_block)

    def blocks_served_exclusively_by(self, isp_ids: set[str]) -> list[str]:
        """Blocks whose fabric providers are all in ``isp_ids``."""
        if not isp_ids:
            raise ValueError("isp_ids must be non-empty")
        return sorted(
            block
            for block in self._by_block
            if self.providers_in_block(block)
            and self.providers_in_block(block) <= isp_ids
        )

    def consistent_with_form477(self, form477: Form477) -> list[str]:
        """Return blocks where the two datasets *disagree* on the
        provider set (empty means fully consistent)."""
        disagreements = []
        # Iterate the union in sorted order: set iteration order varies
        # with PYTHONHASHSEED, and output order must not.
        for block in sorted(set(self._by_block) | set(form477.blocks())):
            if self.providers_in_block(block) != form477.providers_in_block(block):
                disagreements.append(block)
        return disagreements
