"""CAF II regulatory obligations.

Section 2.2 of the paper summarizes the rules a CAF-subsidized ISP must
meet at every certified location:

* offer download >= 10 Mbps and upload >= 1 Mbps ([29] in the paper);
* charge no more than a rate "reasonably comparable" to urban rates —
  within two standard deviations of the average urban rate for similar
  service (the FCC set ~$89/month for 10/1 Mbps service in 2024);
* have service deployed, or deployable within ten business days of a
  request.

These constants and predicates are the single source of truth the
compliance analysis (Q2) evaluates against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.isp.plans import BroadbandPlan

__all__ = [
    "CAF_MIN_DOWNLOAD_MBPS",
    "CAF_MIN_UPLOAD_MBPS",
    "CAF_MAX_RATE_USD",
    "DEPLOYMENT_WINDOW_BUSINESS_DAYS",
    "CafObligations",
    "plan_is_service_compliant",
    "plan_is_rate_compliant",
]

CAF_MIN_DOWNLOAD_MBPS = 10.0
CAF_MIN_UPLOAD_MBPS = 1.0
# The FCC's 2024 urban-rate-survey benchmark for 10/1 Mbps service.
CAF_MAX_RATE_USD = 89.0
DEPLOYMENT_WINDOW_BUSINESS_DAYS = 10


@dataclass(frozen=True)
class CafObligations:
    """The rate and service conditions attached to a CAF subsidy."""

    min_download_mbps: float = CAF_MIN_DOWNLOAD_MBPS
    min_upload_mbps: float = CAF_MIN_UPLOAD_MBPS
    max_rate_usd: float = CAF_MAX_RATE_USD

    def __post_init__(self) -> None:
        if self.min_download_mbps <= 0 or self.min_upload_mbps <= 0:
            raise ValueError("service floors must be positive")
        if self.max_rate_usd <= 0:
            raise ValueError("rate cap must be positive")

    def service_compliant(self, plan: "BroadbandPlan") -> bool:
        """True when ``plan`` satisfies the speed floor.

        Plans without a guaranteed minimum speed (AT&T "Internet Air",
        "Frontier Internet") are non-compliant regardless of nominal
        speed — the paper classifies them that way because "neither ISP
        offers minimum speed guarantees for these plans" (Section 4.2).
        """
        if not plan.is_speed_guaranteed:
            return False
        return (plan.download_mbps >= self.min_download_mbps
                and plan.upload_mbps >= self.min_upload_mbps)

    def rate_compliant(self, plan: "BroadbandPlan") -> bool:
        """True when ``plan`` is at or below the benchmark rate."""
        return plan.monthly_price_usd <= self.max_rate_usd

    def fully_compliant(self, plan: "BroadbandPlan") -> bool:
        """Both rate and service conditions hold."""
        return self.service_compliant(plan) and self.rate_compliant(plan)


_DEFAULT = CafObligations()


def plan_is_service_compliant(plan: "BroadbandPlan") -> bool:
    """Module-level shortcut using the FCC's default obligations."""
    return _DEFAULT.service_compliant(plan)


def plan_is_rate_compliant(plan: "BroadbandPlan") -> bool:
    """Module-level shortcut using the FCC's default obligations."""
    return _DEFAULT.rate_compliant(plan)
