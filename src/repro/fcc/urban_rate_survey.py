"""The FCC urban rate survey and the "reasonably comparable" benchmark.

The FCC deems a rural rate reasonably comparable to urban rates when it
falls within two standard deviations of the average urban rate for
similar service (paper Section 2.2, citing 29 FCC Rcd. 15644). The FCC
runs an annual survey of urban broadband plans to estimate those
averages; the 2024 benchmark for 10/1 Mbps service came out near
$89/month.

:func:`generate_urban_rate_survey` synthesizes a survey whose 10/1
benchmark lands on the paper's number, and :class:`UrbanRateSurvey`
computes the benchmark with the FCC's exact formula, per speed tier.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.stats.distributions import stable_rng

__all__ = ["SurveyObservation", "UrbanRateSurvey", "generate_urban_rate_survey"]


@dataclass(frozen=True)
class SurveyObservation:
    """One urban broadband plan observed by the survey."""

    download_mbps: float
    upload_mbps: float
    monthly_price_usd: float

    def __post_init__(self) -> None:
        if self.download_mbps <= 0 or self.upload_mbps <= 0:
            raise ValueError("speeds must be positive")
        if self.monthly_price_usd <= 0:
            raise ValueError("price must be positive")


# Survey speed tiers (download Mbps) used to bucket observations.
SURVEY_TIERS: tuple[float, ...] = (10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class UrbanRateSurvey:
    """A bucketed survey with the FCC two-sigma benchmark per tier."""

    def __init__(self, observations: list[SurveyObservation]):
        if not observations:
            raise ValueError("survey needs at least one observation")
        self._observations = list(observations)
        self._by_tier: dict[float, list[float]] = {tier: [] for tier in SURVEY_TIERS}
        for obs in self._observations:
            self._by_tier[self.tier_for(obs.download_mbps)].append(
                obs.monthly_price_usd
            )

    @staticmethod
    def tier_for(download_mbps: float) -> float:
        """Map a download speed to its survey tier (largest tier <= speed,
        clamped to the lowest tier)."""
        if download_mbps <= 0:
            raise ValueError("download speed must be positive")
        index = bisect_right(SURVEY_TIERS, download_mbps) - 1
        return SURVEY_TIERS[max(index, 0)]

    def __len__(self) -> int:
        return len(self._observations)

    def tier_prices(self, tier: float) -> list[float]:
        """All observed prices in a tier."""
        if tier not in self._by_tier:
            raise KeyError(f"unknown tier {tier}; tiers: {SURVEY_TIERS}")
        return list(self._by_tier[tier])

    def benchmark(self, download_mbps: float) -> float:
        """The reasonably-comparable cap for ``download_mbps`` service:
        mean urban price + 2 standard deviations, in the matching tier."""
        prices = self._by_tier[self.tier_for(download_mbps)]
        if not prices:
            raise ValueError(
                f"no survey observations for tier of {download_mbps} Mbps"
            )
        array = np.asarray(prices, dtype=float)
        return float(array.mean() + 2.0 * array.std(ddof=0))

    def average_price(self, download_mbps: float) -> float:
        """Mean urban price in the tier of ``download_mbps``."""
        prices = self._by_tier[self.tier_for(download_mbps)]
        if not prices:
            raise ValueError(
                f"no survey observations for tier of {download_mbps} Mbps"
            )
        return float(np.mean(prices))


def generate_urban_rate_survey(
    seed: int = 0, observations_per_tier: int = 400
) -> UrbanRateSurvey:
    """Synthesize a survey calibrated to the paper's 2024 numbers.

    The 10 Mbps tier is centered at $60 with a $14.5 spread so the
    two-sigma benchmark lands at ≈ $89 (the FCC's published 2024 cap for
    10/1 service). Higher tiers scale sub-linearly with speed — urban
    prices grow far more slowly than bandwidth, the root of the carriage
    value gap the paper discusses in Section 4.2.
    """
    if observations_per_tier < 2:
        raise ValueError("need at least 2 observations per tier")
    rng = stable_rng(seed, "urban-rate-survey")
    tier_means = {10.0: 60.0, 25.0: 65.0, 50.0: 70.0,
                  100.0: 75.0, 250.0: 85.0, 1000.0: 95.0}
    tier_sigmas = {10.0: 14.5, 25.0: 14.0, 50.0: 13.0,
                   100.0: 13.0, 250.0: 15.0, 1000.0: 18.0}
    observations = []
    for tier in SURVEY_TIERS:
        prices = rng.normal(tier_means[tier], tier_sigmas[tier],
                            size=observations_per_tier)
        prices = np.clip(prices, 15.0, None)
        # Keep the sample moments on target so the benchmark is exact.
        prices = (prices - prices.mean()) / max(prices.std(ddof=0), 1e-9)
        prices = prices * tier_sigmas[tier] + tier_means[tier]
        upload = max(tier / 10.0, 1.0)
        observations.extend(
            SurveyObservation(
                download_mbps=tier,
                upload_mbps=upload,
                monthly_price_usd=float(price),
            )
            for price in prices
        )
    return UrbanRateSurvey(observations)
