"""FCC Form 477-style availability records.

Form 477 (and its successor, the Broadband Data Collection) has ISPs
declare, per census block, the technologies and maximum speeds they
offer. The paper uses Form 477 together with the National Broadband Map
to find census blocks "served exclusively by the six ISPs … currently
supported by BQT" (Section 4.3). :class:`Form477` stores the records
and implements that exclusivity filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["AvailabilityRecord", "Form477"]


@dataclass(frozen=True)
class AvailabilityRecord:
    """One (ISP, census block) availability declaration."""

    isp_id: str
    block_geoid: str
    technology: str
    max_download_mbps: float
    max_upload_mbps: float

    def __post_init__(self) -> None:
        if len(self.block_geoid) != 15 or not self.block_geoid.isdigit():
            raise ValueError(f"bad block GEOID {self.block_geoid!r}")
        if self.max_download_mbps < 0 or self.max_upload_mbps < 0:
            raise ValueError("speeds must be non-negative")


class Form477:
    """An indexed collection of availability records."""

    def __init__(self, records: Iterable[AvailabilityRecord] = ()):
        self._records: list[AvailabilityRecord] = []
        self._by_block: dict[str, list[AvailabilityRecord]] = {}
        self._by_isp: dict[str, list[AvailabilityRecord]] = {}
        for record in records:
            self.add(record)

    def add(self, record: AvailabilityRecord) -> None:
        """Append one declaration."""
        self._records.append(record)
        self._by_block.setdefault(record.block_geoid, []).append(record)
        self._by_isp.setdefault(record.isp_id, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    def blocks(self) -> list[str]:
        """All declared block GEOIDs, sorted."""
        return sorted(self._by_block)

    def providers_in_block(self, block_geoid: str) -> set[str]:
        """The set of ISP ids declaring availability in a block."""
        return {rec.isp_id for rec in self._by_block.get(block_geoid, [])}

    def records_in_block(self, block_geoid: str) -> list[AvailabilityRecord]:
        """All declarations for a block."""
        return list(self._by_block.get(block_geoid, []))

    def blocks_for_isp(self, isp_id: str) -> list[str]:
        """Sorted blocks where ``isp_id`` declares availability."""
        return sorted({rec.block_geoid for rec in self._by_isp.get(isp_id, [])})

    def blocks_served_exclusively_by(self, isp_ids: set[str]) -> list[str]:
        """Blocks where every declaring provider is in ``isp_ids``.

        This is the Q3 pre-filter: restrict the study to blocks where
        BQT can query *every* provider present, so competition analysis
        never misses an un-queryable competitor.
        """
        if not isp_ids:
            raise ValueError("isp_ids must be non-empty")
        return sorted(
            block
            for block, records in self._by_block.items()
            if records and {rec.isp_id for rec in records} <= isp_ids
        )
