"""The paper's analysis pipeline (the primary contribution).

* :mod:`repro.core.sampling` — the CBG-stratified address sampling
  strategy (max(30, 10%) per block group; all when fewer than 30).
* :mod:`repro.core.collection` — the data-collection campaign: query
  sampled addresses through BQT, retry, and re-sample replacement
  addresses from the same CBG when queries keep failing.
* :mod:`repro.core.audit` — the audit dataset joining query outcomes
  with CBG metadata, and the weighted serviceability/compliance rates.
* :mod:`repro.core.serviceability` — Q1: serviceability analysis by
  ISP, state, state × ISP, and population density.
* :mod:`repro.core.compliance` — Q2: compliance analysis and the
  certified-vs-advertised Table 1.
* :mod:`repro.core.monopoly` — Q3: regulated vs unregulated monopoly
  and competition comparisons at census-block granularity.
* :mod:`repro.core.sensitivity` — the Appendix 8.2 sampling-rate
  sensitivity analysis.
* :mod:`repro.core.pipeline` — one call that runs everything.
"""

from repro.core.audit import AuditDataset, ComplianceStandard
from repro.core.collection import (
    CollectionCampaign,
    CollectionResult,
    Q3Collection,
    collect_q3_dataset,
)
from repro.core.compliance import ComplianceAnalysis, advertised_tier_table
from repro.core.monopoly import (
    BlockComparison,
    MonopolyAnalysis,
    analyze_q3,
)
from repro.core.oversight import (
    OversightComparison,
    compare_oversight,
    detection_power,
    required_sample_for_power,
)
from repro.core.pipeline import AuditReport, run_full_audit
from repro.core.validation import Finding, validate_report, validate_world
from repro.core.sampling import SamplePlan, SamplingPolicy, plan_cbg_sample
from repro.core.sensitivity import SensitivityResult, run_sensitivity_analysis
from repro.core.serviceability import ServiceabilityAnalysis

__all__ = [
    "AuditDataset",
    "AuditReport",
    "BlockComparison",
    "CollectionCampaign",
    "CollectionResult",
    "ComplianceAnalysis",
    "ComplianceStandard",
    "Finding",
    "validate_report",
    "validate_world",
    "MonopolyAnalysis",
    "OversightComparison",
    "Q3Collection",
    "compare_oversight",
    "detection_power",
    "required_sample_for_power",
    "SamplePlan",
    "SamplingPolicy",
    "SensitivityResult",
    "ServiceabilityAnalysis",
    "advertised_tier_table",
    "analyze_q3",
    "collect_q3_dataset",
    "plan_cbg_sample",
    "run_full_audit",
    "run_sensitivity_analysis",
]
