"""Appendix 8.2 — sensitivity of serviceability to the sampling rate.

The paper selects 46 CBGs with more than 30 addresses, queries at least
75% of each as ground truth, then replays smaller sampling rates and
reports the error in the (aggregate) serviceability rate, finding it
under 5% at every rate (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bqt.responses import QueryStatus
from repro.core.sampling import SamplingPolicy, plan_cbg_sample
from repro.stats.distributions import stable_rng
from repro.stats.weighted import weighted_mean
from repro.synth.world import World

__all__ = ["SensitivityResult", "run_sensitivity_analysis"]


@dataclass(frozen=True)
class SensitivityResult:
    """Δ serviceability per sampling rate.

    ``deltas_by_rate`` maps each sampling rate to
    ``(aggregate_delta_pp, max_cbg_delta_pp)``: the error of the
    aggregate (CBG-size-weighted) serviceability estimate — the
    quantity Figure 9 plots — and the worst single-CBG error as a
    diagnostic.
    """

    isp_id: str
    num_cbgs: int
    deltas_by_rate: dict[float, tuple[float, float]]

    def max_error_pct(self) -> float:
        """The worst aggregate error over all rates (paper: < 5%)."""
        return max(agg for agg, _ in self.deltas_by_rate.values())


def run_sensitivity_analysis(
    world: World,
    isp_id: str = "att",
    rates: tuple[float, ...] = (0.05, 0.10, 0.15, 0.20, 0.25),
    num_cbgs: int = 46,
    ground_truth_fraction: float = 0.75,
    min_cbg_size: int = 30,
) -> SensitivityResult:
    """Replay the Appendix 8.2 protocol on a synthetic world.

    For each selected CBG the "ground truth" rate comes from querying
    ``ground_truth_fraction`` of its addresses; each candidate rate is
    then evaluated with the same sampling machinery, and the aggregate
    estimates (weighted by CBG size, as everywhere in the study) are
    compared.
    """
    if not rates:
        raise ValueError("need at least one sampling rate")
    engine = world.engine_for(isp_id)
    candidates: list[tuple[str, list]] = []
    for state in world.config.states:
        for cbg, addresses in world.caf_addresses_by_cbg(isp_id, state).items():
            if len(addresses) > min_cbg_size:
                candidates.append((cbg, addresses))
    if not candidates:
        raise ValueError(
            f"no CBGs with more than {min_cbg_size} addresses for {isp_id!r}"
        )
    rng = stable_rng(world.config.seed, "sensitivity", isp_id)
    order = rng.permutation(len(candidates))
    chosen = [candidates[int(i)] for i in order[:num_cbgs]]

    def served_rate(addresses: list) -> float | None:
        served = conclusive = 0
        for address in addresses:
            record = engine.query(address)
            if not record.status.is_conclusive:
                continue
            conclusive += 1
            served += record.status is QueryStatus.SERVICEABLE
        if conclusive == 0:
            return None
        return served / conclusive

    truth_rates: dict[str, float] = {}
    weights: dict[str, int] = {}
    for cbg, addresses in chosen:
        truth_plan = plan_cbg_sample(
            cbg, addresses,
            SamplingPolicy(min_samples=min_cbg_size,
                           sampling_fraction=ground_truth_fraction),
            seed=world.config.seed,
        )
        rate = served_rate(list(truth_plan.selected))
        if rate is not None:
            truth_rates[cbg] = rate
            weights[cbg] = len(addresses)
    if not truth_rates:
        raise ValueError("no measurable ground-truth CBGs")
    truth_aggregate = weighted_mean(
        list(truth_rates.values()),
        [weights[cbg] for cbg in truth_rates],
    )

    summary: dict[float, tuple[float, float]] = {}
    for rate in rates:
        sampled_rates: dict[str, float] = {}
        for cbg, addresses in chosen:
            if cbg not in truth_rates:
                continue
            plan = plan_cbg_sample(
                cbg, addresses,
                SamplingPolicy(min_samples=min_cbg_size,
                               sampling_fraction=rate),
                seed=world.config.seed + 1,
            )
            estimate = served_rate(list(plan.selected))
            if estimate is not None:
                sampled_rates[cbg] = estimate
        if not sampled_rates:
            raise ValueError(f"no measurable CBGs at rate {rate}")
        aggregate = weighted_mean(
            list(sampled_rates.values()),
            [weights[cbg] for cbg in sampled_rates],
        )
        per_cbg_errors = [abs(sampled_rates[cbg] - truth_rates[cbg]) * 100.0
                          for cbg in sampled_rates]
        summary[rate] = (
            abs(aggregate - truth_aggregate) * 100.0,
            float(np.max(per_cbg_errors)),
        )
    return SensitivityResult(
        isp_id=isp_id, num_cbgs=len(chosen), deltas_by_rate=summary
    )
