"""Equity analysis: who is (not) receiving service through CAF?

Section 2.4 of the paper lists questions USAC's opaque "compliance
gap" cannot answer, including "whether it disproportionately affects
certain populations". The audit dataset can: every audited address
carries its CBG's demographics, so serviceability and compliance can
be disaggregated by income and rurality, and disparities quantified.

Related measurement literature the paper cites ([1], [8], [33], [42])
consistently finds better service in higher-income areas; this module
produces the same views for the CAF audit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.audit import AuditDataset
from repro.stats.correlation import CorrelationResult, spearman
from repro.stats.weighted import weighted_mean
from repro.synth.world import World
from repro.tabular import Table

__all__ = ["EquityAnalysis", "QuartileRow"]


@dataclass(frozen=True)
class QuartileRow:
    """One income-quartile's audited outcomes."""

    quartile: int
    income_low_usd: float
    income_high_usd: float
    num_cbgs: int
    serviceability: float
    compliance: float


class EquityAnalysis:
    """Demographic disaggregation of the audit."""

    def __init__(self, audit: AuditDataset, world: World):
        self._audit = audit
        self._world = world
        self._rates = self._build_rates()

    def _build_rates(self) -> Table:
        served = self._audit.cbg_rates("served").rename({"rate": "serviceability"})
        compliant = self._audit.cbg_rates("compliant").rename({"rate": "compliance"})
        rows = []
        compliance_by_key = {
            (row["isp_id"], row["cbg"]): row["compliance"]
            for row in compliant.iter_rows()
        }
        for row in served.iter_rows():
            block_group = self._world.block_groups.get(row["cbg"])
            if block_group is None:
                continue
            rows.append({
                "isp_id": row["isp_id"],
                "state": row["state"],
                "cbg": row["cbg"],
                "serviceability": row["serviceability"],
                "compliance": compliance_by_key[(row["isp_id"], row["cbg"])],
                "weight": row["weight"],
                "median_income_usd": block_group.median_income_usd,
                "is_rural": block_group.is_rural,
            })
        if not rows:
            raise ValueError("no CBGs with demographic metadata")
        return Table.from_rows(rows)

    @property
    def cbg_table(self) -> Table:
        """Per-CBG outcomes with demographics attached."""
        return self._rates

    # ------------------------------------------------------------------
    def by_income_quartile(self) -> list[QuartileRow]:
        """Weighted outcomes per CBG-income quartile (1 = poorest)."""
        incomes = self._rates["median_income_usd"]
        edges = np.percentile(incomes, [0, 25, 50, 75, 100])
        rows = []
        for quartile in range(1, 5):
            low, high = edges[quartile - 1], edges[quartile]
            if quartile < 4:
                mask = (incomes >= low) & (incomes < high)
            else:
                mask = (incomes >= low) & (incomes <= high)
            sub = self._rates.mask(mask)
            if len(sub) == 0:
                continue
            rows.append(QuartileRow(
                quartile=quartile,
                income_low_usd=float(low),
                income_high_usd=float(high),
                num_cbgs=len(sub),
                serviceability=weighted_mean(sub["serviceability"],
                                             sub["weight"]),
                compliance=weighted_mean(sub["compliance"], sub["weight"]),
            ))
        return rows

    def income_serviceability_correlation(self) -> CorrelationResult:
        """Spearman correlation of CBG income vs serviceability."""
        return spearman(self._rates["median_income_usd"],
                        self._rates["serviceability"])

    def rural_urban_gap(self) -> dict[str, float]:
        """Weighted serviceability for rural vs urban CBGs."""
        out = {}
        for label, flag in (("rural", True), ("urban", False)):
            sub = self._rates.mask(self._rates["is_rural"].astype(bool) == flag)
            if len(sub):
                out[label] = weighted_mean(sub["serviceability"],
                                           sub["weight"])
        return out

    def disparity_ratio(self) -> float:
        """Top-quartile over bottom-quartile weighted serviceability.

        1.0 means equitable outcomes; the digital-divide literature the
        paper cites predicts a ratio above 1.
        """
        quartiles = {row.quartile: row for row in self.by_income_quartile()}
        if 1 not in quartiles or 4 not in quartiles:
            raise ValueError("need both extreme quartiles")
        bottom = quartiles[1].serviceability
        if bottom == 0:
            raise ValueError("bottom quartile has zero serviceability")
        return quartiles[4].serviceability / bottom

    def quartile_table(self) -> Table:
        """The quartile breakdown as a table."""
        return Table.from_rows([
            {
                "quartile": row.quartile,
                "income_low_usd": row.income_low_usd,
                "income_high_usd": row.income_high_usd,
                "num_cbgs": row.num_cbgs,
                "serviceability": row.serviceability,
                "compliance": row.compliance,
            }
            for row in self.by_income_quartile()
        ])
