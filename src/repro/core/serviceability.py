"""Q1 — serviceability analysis (Section 4.1).

Produces every view Figure 2, Figure 3, and Figure 10 plot: the
aggregate weighted rate, per-ISP and per-state CBG-rate distributions
(boxplot statistics), per state × ISP rates, the population-density
correlation, and per-CBG geospatial rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.audit import AuditDataset
from repro.stats.correlation import CorrelationResult, spearman
from repro.stats.summary import BoxStats, box_stats
from repro.tabular import Table

__all__ = ["ServiceabilityAnalysis"]


class ServiceabilityAnalysis:
    """All Q1 views over one audit dataset."""

    def __init__(self, audit: AuditDataset):
        self._audit = audit
        self._cbg_rates = audit.cbg_rates("served")

    @property
    def cbg_rates(self) -> Table:
        """Per-(ISP, state, CBG) serviceability rates with weights."""
        return self._cbg_rates

    def aggregate_rate(self) -> float:
        """The headline weighted serviceability rate (paper: 55.45%)."""
        return self._audit.serviceability_rate()

    def rate_by_isp(self) -> dict[str, float]:
        """Weighted rate per ISP (paper: AT&T 31.53% … CenturyLink 90.42%)."""
        return {isp: self._audit.serviceability_rate(isp_id=isp)
                for isp in self._audit.isps()}

    def rate_by_state(self) -> dict[str, float]:
        """Weighted rate per state."""
        return {state: self._audit.serviceability_rate(state=state)
                for state in self._audit.states()}

    def rate_by_state_isp(self) -> Table:
        """Weighted rate per (state, ISP) pair."""
        rows = []
        for isp in self._audit.isps():
            for state in self._audit.states_for_isp(isp):
                rows.append({
                    "isp_id": isp,
                    "state": state,
                    "rate": self._audit.serviceability_rate(isp_id=isp, state=state),
                })
        return Table.from_rows(rows)

    # ------------------------------------------------------------------
    # Distribution views (the boxplots of Figure 2)
    # ------------------------------------------------------------------
    def cbg_rate_distribution_by_isp(self) -> dict[str, BoxStats]:
        """Boxplot statistics of CBG rates per ISP (Figure 2a)."""
        out = {}
        for isp in self._audit.isps():
            rates = self._cbg_rates.where_equal(isp_id=isp)["rate"]
            out[isp] = box_stats(rates)
        return out

    def cbg_rate_distribution_by_state(self) -> dict[str, BoxStats]:
        """Boxplot statistics of CBG rates per state (Figure 2b)."""
        out = {}
        for state in self._audit.states():
            rates = self._cbg_rates.where_equal(state=state)["rate"]
            out[state] = box_stats(rates)
        return out

    def isp_state_distribution(self, isp_id: str) -> dict[str, BoxStats]:
        """Boxplot statistics of one ISP's CBG rates per state
        (Figure 2c for AT&T)."""
        sub = self._cbg_rates.where_equal(isp_id=isp_id)
        out = {}
        for state in sorted(set(sub["state"])):
            out[str(state)] = box_stats(sub.where_equal(state=state)["rate"])
        return out

    # ------------------------------------------------------------------
    # Density analysis (Figure 3) and geospatial rows (Figure 10)
    # ------------------------------------------------------------------
    def density_correlation(self, isp_id: str, state: str) -> CorrelationResult:
        """Spearman correlation of CBG serviceability vs population
        density for one (ISP, state)."""
        sub = self._cbg_rates.where_equal(isp_id=isp_id, state=state)
        densities = sub["population_density"]
        rates = sub["rate"]
        mask = ~np.isnan(densities)
        return spearman(densities[mask], rates[mask])

    def density_scatter(self, isp_id: str, state: str) -> Table:
        """The (serviceability, density) scatter behind Figure 3."""
        sub = self._cbg_rates.where_equal(isp_id=isp_id, state=state)
        return sub.select(["cbg", "rate", "population_density", "weight"])

    def unserved_fraction(self) -> float:
        """1 − aggregate serviceability (the paper's 44.55% headline)."""
        return 1.0 - self.aggregate_rate()
