"""The end-to-end audit pipeline.

``run_full_audit`` is the one-call reproduction of the paper's study:
build (or accept) a world, run the Q1/Q2 stratified collection, run the
Q3 block collection, and wrap every analysis object into an
:class:`AuditReport` with the headline numbers the abstract reports.

Passing ``parallel=RuntimeConfig(...)`` routes the two collections
through :mod:`repro.runtime` — sharded (optionally multi-process,
checkpointed, cached) execution whose merged results are bit-identical
to the sequential path for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.audit import AuditDataset, ComplianceStandard
from repro.core.collection import (
    CollectionCampaign,
    CollectionResult,
    Q3Collection,
    collect_q3_dataset,
)
from repro.core.compliance import ComplianceAnalysis
from repro.core.monopoly import MonopolyAnalysis, analyze_q3
from repro.core.sampling import SamplingPolicy
from repro.core.serviceability import ServiceabilityAnalysis
from repro.fcc.urban_rate_survey import generate_urban_rate_survey
from repro.synth.world import World, build_world
from repro.synth.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.bqt.engine import EngineConfig
    from repro.runtime.executor import RuntimeConfig

__all__ = ["AuditReport", "run_full_audit"]

CAF_STUDY_ISP_IDS = ("att", "centurylink", "frontier", "consolidated")


@dataclass
class AuditReport:
    """The full study output."""

    world: World
    collection: CollectionResult
    audit: AuditDataset
    serviceability: ServiceabilityAnalysis
    compliance: ComplianceAnalysis
    q3_collection: Q3Collection
    monopoly: MonopolyAnalysis

    def headline(self) -> dict[str, float]:
        """The abstract's headline numbers, as measured on this world."""
        type_a = self.monopoly.outcome_shares("A", "monopoly")
        return {
            "serviceability_rate": self.serviceability.aggregate_rate(),
            "compliance_rate": self.compliance.aggregate_rate(),
            "type_a_caf_better_share": type_a["caf"],
            "type_a_tie_share": type_a["tie"],
            "type_a_monopoly_better_share": type_a["rival"],
        }

    def summary_lines(self) -> list[str]:
        """Human-readable summary for the CLI and examples."""
        numbers = self.headline()
        lines = [
            f"Queried {len(self.collection.log)} Q1/Q2 records, "
            f"{len(self.q3_collection.log)} Q3 records",
            f"Serviceability rate: {numbers['serviceability_rate']:.2%} "
            f"(paper: 55.45%)",
            f"Compliance rate:     {numbers['compliance_rate']:.2%} "
            f"(paper: 33.03%)",
        ]
        for isp, rate in sorted(self.serviceability.rate_by_isp().items()):
            lines.append(f"  serviceability[{isp}] = {rate:.2%}")
        for isp, rate in sorted(self.compliance.rate_by_isp().items()):
            lines.append(f"  compliance[{isp}] = {rate:.2%}")
        lines.append(
            "Type A outcomes (tie/CAF/monopoly): "
            f"{numbers['type_a_tie_share']:.0%}/"
            f"{numbers['type_a_caf_better_share']:.0%}/"
            f"{numbers['type_a_monopoly_better_share']:.0%} "
            "(paper: 55%/27%/18%)"
        )
        return lines


def cached_audit_report(
    cache_dir: str,
    scenario: ScenarioConfig,
    policy: SamplingPolicy | None = None,
    use_urban_survey: bool = True,
) -> "AuditReport | None":
    """The cache's report for this audit, or None on a miss.

    Exactly the lookup :func:`run_full_audit` performs before building
    anything — same digest inputs (study ISP set included), same
    defaults — exposed so other entry points (the CLI's autotuned
    path) cannot drift from it.
    """
    from repro.runtime.cache import AuditCache, audit_digest

    return AuditCache(cache_dir).get(audit_digest(
        scenario, policy, CAF_STUDY_ISP_IDS,
        use_urban_survey=use_urban_survey))


def cached_world(cache_dir: str, scenario: ScenarioConfig) -> World:
    """This scenario's world via the cache's world store.

    A hit skips the build; a miss builds and warms the store — the
    same behavior :func:`run_full_audit` has on an audit miss.
    """
    from repro.runtime.cache import AuditCache, world_digest

    cache = AuditCache(cache_dir)
    scenario_key = world_digest(scenario)
    world = cache.get_world(scenario_key)
    if world is None:
        world = build_world(scenario)
        cache.put_world(scenario_key, world)
    return world


def run_full_audit(
    world: World | None = None,
    scenario: ScenarioConfig | None = None,
    policy: SamplingPolicy | None = None,
    use_urban_survey: bool = True,
    parallel: "RuntimeConfig | None" = None,
    on_progress=None,
    engine_config: "EngineConfig | None" = None,
) -> AuditReport:
    """Run the complete study and return every analysis object.

    ``parallel`` selects the sharded runtime for the two collection
    campaigns (``backend="async"`` interleaves each shard's storefront
    sessions on an event loop); its ``cache_dir`` short-circuits the
    whole call with a content-addressed hit when the same (scenario,
    policy, ISP set) audit has already been computed. On an audit miss
    the world build is still served from the cache's scenario-keyed
    world store, so e.g. policy sweeps rebuild only the campaigns.
    ``on_progress`` (sharded runs only) fires per completed shard with
    ``(completed, total, shard_result, restored)``.
    ``engine_config`` overrides the retry/pacing policy for both
    campaigns; a non-default one is part of the cache address (see
    :func:`repro.runtime.cache.audit_digest`).
    """
    cache = digest = None
    if parallel is not None and parallel.cache_dir is not None:
        from repro.runtime.cache import AuditCache, audit_digest

        cache = AuditCache(parallel.cache_dir)
        digest = audit_digest(
            world.config if world is not None else (scenario or ScenarioConfig()),
            policy, CAF_STUDY_ISP_IDS, use_urban_survey=use_urban_survey,
            engine_config=engine_config,
        )
        cached = cache.get(digest)
        if cached is not None:
            return cached
    if world is None:
        if cache is not None:
            world = cached_world(parallel.cache_dir,
                                 scenario or ScenarioConfig())
        else:
            world = build_world(scenario)
    if parallel is not None:
        from repro.runtime.executor import execute_campaign

        collection, q3_collection = execute_campaign(
            world, parallel, policy=policy, isps=CAF_STUDY_ISP_IDS,
            engine_config=engine_config, on_progress=on_progress)
    else:
        campaign = CollectionCampaign(world, policy=policy,
                                      engine_config=engine_config)
        collection = campaign.run(isps=CAF_STUDY_ISP_IDS)
        q3_collection = collect_q3_dataset(world, engine_config=engine_config)
    survey = (generate_urban_rate_survey(seed=world.config.seed)
              if use_urban_survey else None)
    standard = ComplianceStandard(survey=survey)
    audit = AuditDataset(
        collection.log, collection.cbg_totals, world=world, standard=standard
    )
    report = AuditReport(
        world=world,
        collection=collection,
        audit=audit,
        serviceability=ServiceabilityAnalysis(audit),
        compliance=ComplianceAnalysis(audit, caf_map=world.caf_map),
        q3_collection=q3_collection,
        monopoly=analyze_q3(q3_collection),
    )
    if cache is not None and digest is not None:
        cache.put(digest, report)
    return report
