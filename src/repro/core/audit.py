"""The audit dataset and the paper's weighted rate metrics.

An :class:`AuditDataset` joins the Q1/Q2 query log with CBG metadata
and computes the two headline metrics exactly as Section 4 defines
them:

* *serviceability rate* — per CBG, served / conclusive-queried; rolled
  up to states/ISPs/overall as the CAF-address-count-weighted mean of
  CBG rates;
* *compliance rate* — identical weighting, with the numerator counting
  addresses that are served **and** advertise a guaranteed >= 10/1 Mbps
  plan at a rate within the FCC benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.fcc.regulations import CAF_MIN_DOWNLOAD_MBPS, CAF_MIN_UPLOAD_MBPS
from repro.fcc.urban_rate_survey import UrbanRateSurvey
from repro.isp.plans import BroadbandPlan
from repro.stats.weighted import weighted_mean
from repro.synth.world import World
from repro.tabular import Table

__all__ = ["ComplianceStandard", "AuditDataset"]


@dataclass(frozen=True)
class ComplianceStandard:
    """The rate-and-service test applied to an advertised plan set."""

    min_download_mbps: float = CAF_MIN_DOWNLOAD_MBPS
    min_upload_mbps: float = CAF_MIN_UPLOAD_MBPS
    flat_rate_cap_usd: float = 89.0
    survey: UrbanRateSurvey | None = None

    def rate_cap_for(self, download_mbps: float) -> float:
        """The benchmark rate for a plan's speed tier."""
        if self.survey is not None:
            return self.survey.benchmark(download_mbps)
        return self.flat_rate_cap_usd

    def plan_complies(self, plan: BroadbandPlan) -> bool:
        """Whether one plan satisfies both conditions."""
        if not plan.is_speed_guaranteed:
            return False
        if plan.download_mbps < self.min_download_mbps:
            return False
        if plan.upload_mbps < self.min_upload_mbps:
            return False
        return plan.monthly_price_usd <= self.rate_cap_for(plan.download_mbps)

    def record_complies(self, record: QueryRecord) -> bool:
        """Whether a served address has at least one compliant plan."""
        if record.status is not QueryStatus.SERVICEABLE:
            return False
        return any(self.plan_complies(plan) for plan in record.plans)


class AuditDataset:
    """Per-address audit rows with CBG weights and metadata."""

    def __init__(
        self,
        log: QueryLog,
        cbg_totals: Mapping[tuple[str, str], int],
        world: World | None = None,
        standard: ComplianceStandard | None = None,
    ):
        self._standard = standard or ComplianceStandard()
        rows = []
        for record in log:
            if not record.status.is_conclusive:
                continue
            cbg = record.block_group_geoid
            weight = cbg_totals.get((record.isp_id, cbg))
            if weight is None:
                raise KeyError(
                    f"no CBG total for ({record.isp_id}, {cbg}); the "
                    "collection result must supply totals for every "
                    "queried CBG"
                )
            served = record.status is QueryStatus.SERVICEABLE
            best = record.best_plan
            density = np.nan
            rural = True
            if world is not None:
                block_group = world.block_groups.get(cbg)
                if block_group is not None:
                    density = block_group.population_density
                    rural = block_group.is_rural
            rows.append({
                "isp_id": record.isp_id,
                "state": record.state_abbreviation,
                "cbg": cbg,
                "block": record.block_geoid,
                "address_id": record.address_id,
                "served": served,
                "compliant": self._standard.record_complies(record),
                "max_download_mbps": record.max_download_mbps,
                "advertised_download_mbps": (best.download_mbps if best else 0.0),
                "best_price_usd": (best.monthly_price_usd if best else np.nan),
                "tier_label": record.tier_label,
                "cbg_caf_total": int(weight),
                "population_density": density,
                "is_rural": rural,
            })
        if not rows:
            raise ValueError("audit dataset is empty — no conclusive records")
        self._table = Table.from_rows(rows)

    # ------------------------------------------------------------------
    @property
    def table(self) -> Table:
        """The underlying per-address table."""
        return self._table

    @property
    def standard(self) -> ComplianceStandard:
        """The compliance standard in force."""
        return self._standard

    def __len__(self) -> int:
        return len(self._table)

    # ------------------------------------------------------------------
    def cbg_rates(self, flag_column: str, extra_keys: Sequence[str] = ()) -> Table:
        """Per-CBG rate of ``flag_column`` with CBG weights attached."""
        keys = ["isp_id", "state", "cbg", *extra_keys]
        return self._table.group_by(keys).apply(lambda sub: {
            "rate": float(np.mean(sub[flag_column].astype(float))),
            "queried": len(sub),
            "weight": int(sub["cbg_caf_total"][0]),
            "population_density": float(sub["population_density"][0]),
        })

    def _weighted_rate(self, flag_column: str, **conditions: str) -> float:
        rates = self.cbg_rates(flag_column)
        for column, value in conditions.items():
            rates = rates.where_equal(**{column: value})
        if len(rates) == 0:
            raise ValueError(f"no CBGs match {conditions!r}")
        return weighted_mean(rates["rate"], rates["weight"])

    def serviceability_rate(self, isp_id: str | None = None,
                            state: str | None = None) -> float:
        """The weighted serviceability rate, optionally restricted."""
        conditions = {}
        if isp_id is not None:
            conditions["isp_id"] = isp_id
        if state is not None:
            conditions["state"] = state
        return self._weighted_rate("served", **conditions)

    def compliance_rate(self, isp_id: str | None = None,
                        state: str | None = None) -> float:
        """The weighted compliance rate, optionally restricted."""
        conditions = {}
        if isp_id is not None:
            conditions["isp_id"] = isp_id
        if state is not None:
            conditions["state"] = state
        return self._weighted_rate("compliant", **conditions)

    # ------------------------------------------------------------------
    def isps(self) -> list[str]:
        """ISPs present in the audit."""
        return [str(v) for v in self._table.unique("isp_id")]

    def states(self) -> list[str]:
        """States present in the audit."""
        return [str(v) for v in self._table.unique("state")]

    def states_for_isp(self, isp_id: str) -> list[str]:
        """States where one ISP was audited."""
        sub = self._table.where_equal(isp_id=isp_id)
        return [str(v) for v in sub.unique("state")]
