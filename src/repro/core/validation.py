"""Cross-dataset consistency validation.

A world is assembled from half a dozen generators; before trusting an
audit built on top of it, a release-quality pipeline checks that the
pieces agree. ``validate_world`` runs the invariant suite and returns
findings (empty = consistent); ``validate_report`` extends it to the
audit outputs. The checks mirror the referential-integrity properties
the real datasets are supposed to have (and, per the paper, sometimes
don't — which is rather the point of auditing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bqt.responses import QueryStatus
from repro.core.pipeline import AuditReport
from repro.synth.world import World

__all__ = ["Finding", "validate_world", "validate_report"]


@dataclass(frozen=True)
class Finding:
    """One failed consistency check."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


def _check(findings: list[Finding], check: str, ok: bool, detail: str) -> None:
    if not ok:
        findings.append(Finding(check=check, detail=detail))


def validate_world(world: World, sample_limit: int = 2000) -> list[Finding]:
    """Run the world-invariant suite; returns failed checks."""
    findings: list[Finding] = []

    # Every CAF Map record references a generated address in the same
    # block, certified by an ISP with a Table 3 footprint in that state.
    records = list(world.caf_map)
    _check(findings, "caf_map_nonempty", bool(records), "CAF Map is empty")
    for record in records[:sample_limit]:
        address = world.caf_addresses.get(record.address_id)
        if address is None:
            _check(findings, "caf_map_address_exists", False,
                   f"record {record.address_id} has no address")
            continue
        _check(findings, "caf_map_block_matches",
               address.block_geoid == record.block_geoid,
               f"{record.address_id}: block mismatch")
        _check(findings, "caf_map_state_matches",
               address.state_abbreviation == record.state_abbreviation,
               f"{record.address_id}: state mismatch")

    # Certified speeds always satisfy the CAF floor (Figure 1f).
    bad_certs = [r.address_id for r in records if not r.meets_caf_speed_floor]
    _check(findings, "certified_meets_floor", not bad_certs,
           f"{len(bad_certs)} certifications below 10/1")

    # Geography indexes cover every referenced CBG and block.
    for record in records[:sample_limit]:
        _check(findings, "cbg_indexed",
               record.block_group_geoid in world.block_groups,
               f"CBG {record.block_group_geoid} missing from geography")
        _check(findings, "block_indexed",
               record.block_geoid in world.blocks,
               f"block {record.block_geoid} missing from geography")

    # Ground truth: every unserved truth has no plans, every served
    # truth with plans has positive speeds.
    for (isp_id, address_id) in list(world.ground_truth.pairs())[:sample_limit]:
        truth = world.ground_truth.truth_for(isp_id, address_id)
        if truth.serves:
            for plan in truth.plans:
                _check(findings, "plan_speeds_positive",
                       plan.download_mbps > 0,
                       f"({isp_id}, {address_id}): zero-speed plan")
        else:
            _check(findings, "unserved_has_no_plans", not truth.plans,
                   f"({isp_id}, {address_id}): unserved with plans")

    # Q3 structures: Form 477 and the NBM agree; every competition
    # classification references its incumbent's availability.
    disagreements = world.broadband_map.consistent_with_form477(world.form477)
    _check(findings, "nbm_matches_form477", not disagreements,
           f"{len(disagreements)} blocks disagree")
    for block_geoid, competition in list(world.block_competition.items())[:sample_limit]:
        providers = world.form477.providers_in_block(block_geoid)
        _check(findings, "incumbent_declared",
               competition.incumbent_isp_id in providers,
               f"{block_geoid}: incumbent not in Form 477")

    # Zillow feed is disjoint from CAF addresses.
    overlap = [a for a in list(world.caf_addresses)[:sample_limit]
               if a in world.zillow]
    _check(findings, "zillow_disjoint", not overlap,
           f"{len(overlap)} CAF addresses in the Zillow feed")

    # The ledger funds exactly the certifying (ISP, state) cells.
    for (isp_id, state) in world.caf_by_isp_state:
        _check(findings, "ledger_covers_cells",
               world.ledger.amount_for(isp_id, state) > 0,
               f"({isp_id}, {state}) certified but unfunded")
    return findings


def validate_report(report: AuditReport,
                    sample_limit: int = 2000) -> list[Finding]:
    """World checks plus audit-output invariants."""
    findings = validate_world(report.world, sample_limit=sample_limit)

    # Every audited row references a queried CBG with a weight, and
    # rates are probabilities with compliance <= serviceability.
    audit = report.audit
    _check(findings, "audit_nonempty", len(audit) > 0, "audit is empty")
    serviceability = audit.serviceability_rate()
    compliance = audit.compliance_rate()
    _check(findings, "rates_are_probabilities",
           0.0 <= compliance <= serviceability <= 1.0,
           f"serviceability={serviceability}, compliance={compliance}")

    # Log statuses: conclusive records only in the audit; unknowns all
    # carry an error category.
    for record in list(report.collection.log)[:sample_limit]:
        if record.status is QueryStatus.UNKNOWN:
            _check(findings, "unknowns_categorized",
                   record.error_category is not None,
                   f"{record.address_id}: unknown without category")

    # Q3: every analyzed block has an incumbent and a mode for every
    # logged address.
    q3 = report.q3_collection
    for block in q3.analyzed_blocks[:sample_limit]:
        _check(findings, "q3_incumbent_known", block in q3.incumbents,
               f"{block}: no incumbent")
    missing_modes = [r.address_id for r in list(q3.log)[:sample_limit]
                     if r.address_id not in q3.modes]
    _check(findings, "q3_modes_assigned", not missing_modes,
           f"{len(missing_modes)} Q3 records without a mode")
    return findings
