"""Oversight comparison: USAC's sampled reviews vs an external audit.

Section 2.4 of the paper argues USAC's oversight is structurally weak:
it samples few locations, relies on ISP-supplied evidence, reports a
single opaque "compliance gap", and some tests only reach active
subscribers. This module quantifies that critique on a synthetic world
where ground truth is known:

* run USAC-style reviews at several sample sizes and measure how far
  their gap estimate sits from truth;
* run the paper's external audit on the same world and measure the
  same distance;
* compute the *detection power* of a sampled review — the probability
  it observes at least one unserved location when a fraction of
  certifications are false.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.audit import AuditDataset
from repro.core.collection import CollectionCampaign
from repro.isp.deployment import GroundTruth
from repro.synth.world import World
from repro.tabular import Table

__all__ = ["OversightComparison", "compare_oversight", "detection_power"]


def detection_power(sample_size: int, unserved_fraction: float) -> float:
    """Probability a random review of ``sample_size`` certified
    locations observes at least one unserved location."""
    if sample_size < 0:
        raise ValueError("sample size must be non-negative")
    if not 0.0 <= unserved_fraction <= 1.0:
        raise ValueError("unserved fraction must be a probability")
    return 1.0 - (1.0 - unserved_fraction) ** sample_size


@dataclass(frozen=True)
class OversightComparison:
    """Truth vs USAC review vs external audit for one ISP."""

    isp_id: str
    truth_unserved_fraction: float
    review_rows: Table
    audit_unserved_fraction: float
    audit_addresses: int

    @property
    def audit_error_pp(self) -> float:
        """External audit's distance from truth in percentage points."""
        return abs(self.audit_unserved_fraction
                   - self.truth_unserved_fraction) * 100.0

    def best_review_error_pp(self) -> float:
        """The *best* sampled review's distance from truth."""
        return min(
            abs(row["estimated_gap"] - self.truth_unserved_fraction) * 100.0
            for row in self.review_rows.iter_rows()
        )

    def render(self) -> str:
        """Human-readable comparison."""
        lines = [
            f"Oversight comparison for {self.isp_id}:",
            f"  ground-truth unserved fraction: "
            f"{self.truth_unserved_fraction:.1%}",
            f"  external audit estimate:        "
            f"{self.audit_unserved_fraction:.1%} "
            f"({self.audit_addresses} addresses, "
            f"error {self.audit_error_pp:.1f} pp)",
            "  USAC-style sampled reviews:",
        ]
        for row in self.review_rows.iter_rows():
            lines.append(
                f"    n={row['sample_size']:>5}: gap "
                f"{row['estimated_gap']:.1%}, detection power "
                f"{row['detection_power']:.1%}"
            )
        return "\n".join(lines)


def _truth_unserved(world: World, isp_id: str) -> float:
    truth: GroundTruth = world.ground_truth
    served = total = 0
    for (isp, _state), addresses in world.caf_by_isp_state.items():
        if isp != isp_id:
            continue
        for address in addresses:
            total += 1
            served += truth.serves(isp_id, address.address_id)
    if total == 0:
        raise ValueError(f"no certified addresses for {isp_id!r}")
    return 1.0 - served / total


def compare_oversight(
    world: World,
    isp_id: str = "att",
    review_fractions: tuple[float, ...] = (0.001, 0.01, 0.05),
) -> OversightComparison:
    """Run both oversight styles against the same world."""
    if not review_fractions:
        raise ValueError("need at least one review fraction")
    truth_unserved = _truth_unserved(world, isp_id)

    rows = []
    for fraction in review_fractions:
        review = world.hubb.run_verification_review(
            isp_id, world.ground_truth, sample_fraction=fraction)
        rows.append({
            "sample_fraction": fraction,
            "sample_size": review.sampled,
            "estimated_gap": review.compliance_gap,
            "detection_power": detection_power(review.sampled,
                                               truth_unserved),
        })

    campaign = CollectionCampaign(world)
    collection = campaign.run(isps=(isp_id,))
    audit = AuditDataset(collection.log, collection.cbg_totals, world=world)
    return OversightComparison(
        isp_id=isp_id,
        truth_unserved_fraction=truth_unserved,
        review_rows=Table.from_rows(rows),
        audit_unserved_fraction=1.0 - audit.serviceability_rate(isp_id=isp_id),
        audit_addresses=len(audit.table),
    )


def required_sample_for_power(
    unserved_fraction: float, power: float = 0.95
) -> int:
    """Smallest review sample achieving the target detection power.

    Useful for oversight design: how many certified locations must a
    regulator check to have ``power`` probability of catching an ISP
    whose certifications are false at ``unserved_fraction``.
    """
    if not 0.0 < unserved_fraction < 1.0:
        raise ValueError("unserved fraction must be in (0, 1)")
    if not 0.0 < power < 1.0:
        raise ValueError("power must be in (0, 1)")
    return math.ceil(math.log(1.0 - power) / math.log(1.0 - unserved_fraction))
