"""Data-collection campaigns.

Two campaigns mirror the paper's two collections:

* :class:`CollectionCampaign` — the Q1/Q2 campaign: for every
  (ISP, state) cell, sample each CBG per the policy, query through BQT,
  and when an address ends ``UNKNOWN`` draw a replacement address from
  the same CBG's reserve (up to ``max_replacements`` per failure).
* :func:`collect_q3_dataset` — the Q3 campaign: in analyzed blocks,
  query the incumbent at *every* CAF and non-CAF address, and the
  overlapping cable ISP at non-CAF addresses, then assign each non-CAF
  address its mode (monopoly vs competition) from the cable outcome.

Both campaigns decompose into *cells* — one (ISP, CBG) sample for
Q1/Q2 (:func:`run_q12_cell`), one census block for Q3
(:func:`run_q3_block`) — each queried through a fresh engine so a
cell's records depend only on the world seed and the cell's own
addresses, never on which other cells ran before it. That independence
is what lets :mod:`repro.runtime` shard a campaign across processes and
merge the shard logs back into a result bit-identical to this module's
sequential loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.addresses.models import StreetAddress
from repro.bqt.engine import EngineConfig
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.sampling import SamplePlan, SamplingPolicy, plan_cbg_sample
from repro.synth.world import World

__all__ = [
    "CollectionResult",
    "CollectionCampaign",
    "Q3Collection",
    "Q3BlockOutcome",
    "collect_q3_dataset",
    "q3_block_candidates",
    "q12_cell_setup",
    "q12_query_sequence",
    "q3_block_setup",
    "q3_query_sequence",
    "run_q12_cell",
    "run_q3_block",
    "settle_q12_record",
    "settle_q3_mode",
]


@dataclass
class CollectionResult:
    """Everything the Q1/Q2 campaign produced."""

    log: QueryLog
    # (isp_id, cbg) → the sample plan used.
    plans: dict[tuple[str, str], SamplePlan] = field(default_factory=dict)
    # (isp_id, cbg) → number of CAF addresses in the CBG (the weights).
    cbg_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def queried_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses attempted (Figure 7)."""
        plan = self.plans[(isp_id, cbg)]
        attempted = {r.address_id for r in self.log.for_isp(isp_id)
                     if r.block_group_geoid == cbg}
        if plan.population_size == 0:
            return 0.0
        return len(attempted) / plan.population_size

    def collected_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses with conclusive results
        (Figure 8)."""
        plan = self.plans[(isp_id, cbg)]
        conclusive = {r.address_id for r in self.log.for_isp(isp_id)
                      if r.block_group_geoid == cbg and r.status.is_conclusive}
        if plan.population_size == 0:
            return 0.0
        return len(conclusive) / plan.population_size


def _as_replacement(record: QueryRecord, failed: StreetAddress) -> QueryRecord:
    return QueryRecord(
        isp_id=record.isp_id,
        address_id=record.address_id,
        block_geoid=record.block_geoid,
        state_abbreviation=record.state_abbreviation,
        status=record.status,
        plans=record.plans,
        error_category=record.error_category,
        attempts=record.attempts,
        elapsed_seconds=record.elapsed_seconds,
        replacement_for=failed.address_id,
    )


def settle_q12_record(
    record: QueryRecord, replacement_for: StreetAddress | None
) -> QueryRecord:
    """Settle one Q1/Q2 query's record: mark reserve draws.

    Single-sourced so the blocking and asyncio drivers log — and feed
    back into :func:`q12_query_sequence` — the exact same record.
    """
    if replacement_for is None:
        return record
    return _as_replacement(record, replacement_for)


def settle_q3_mode(step_mode: str | None, record: QueryRecord) -> str | None:
    """Settle one Q3 step's incumbent mode (``None`` = no change).

    Incumbent steps carry their mode in the sequence; a cable probe
    upgrades the address to ``"competition"`` exactly when it returned
    serviceable. Single-sourced for the same reason as
    :func:`settle_q12_record`.
    """
    if step_mode is not None:
        return step_mode
    if record.status is QueryStatus.SERVICEABLE:
        return "competition"
    return None


def q12_query_sequence(plan: SamplePlan, max_replacements: int):
    """The Q1/Q2 cell's query schedule, as a driver-agnostic coroutine.

    Yields ``(address, replacement_for)`` pairs — ``replacement_for``
    is the failed :class:`StreetAddress` when this query is a reserve
    draw, else ``None`` — and expects the driver to ``send`` back the
    (already replacement-marked) :class:`QueryRecord` it produced. The
    replacement policy (draw from the reserve while the latest record
    is ``UNKNOWN``, up to ``max_replacements`` per failure) lives only
    here, so the blocking driver (:func:`run_q12_cell`) and the asyncio
    driver (:mod:`repro.bqt.aio`) cannot drift apart.
    """
    reserve = list(plan.reserve)
    for address in plan.selected:
        record = yield (address, None)
        failed = address
        replacements_used = 0
        while (record.status is QueryStatus.UNKNOWN
               and replacements_used < max_replacements
               and reserve):
            replacement = reserve.pop(0)
            record = yield (replacement, failed)
            failed = replacement
            replacements_used += 1


def q12_cell_setup(
    world: World,
    isp_id: str,
    cbg: str,
    addresses: list[StreetAddress],
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
):
    """The Q1/Q2 cell drivers' shared prologue: fresh engine + plan.

    Single-sourced (like :func:`q12_query_sequence`) so the blocking
    and asyncio drivers cannot drift in how a cell's engine is seeded
    or its sample planned.
    """
    policy = policy or SamplingPolicy()
    engine = world.engine_for(isp_id, engine_config)
    plan = plan_cbg_sample(cbg, addresses, policy, seed=world.config.seed)
    return engine, plan


def run_q12_cell(
    world: World,
    isp_id: str,
    cbg: str,
    addresses: list[StreetAddress],
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
) -> tuple[SamplePlan, list[QueryRecord]]:
    """Query one (ISP, CBG) cell against a fresh engine.

    The cell is the atomic unit of the Q1/Q2 campaign: the sample plan
    is deterministic in (world seed, CBG, addresses), and the fresh
    engine (with its fresh proxy pool) makes the record stream
    deterministic in the same inputs — independent of every other cell.
    """
    if max_replacements < 0:
        raise ValueError("max_replacements must be non-negative")
    engine, plan = q12_cell_setup(world, isp_id, cbg, addresses,
                                  policy=policy, engine_config=engine_config)
    records: list[QueryRecord] = []
    sequence = q12_query_sequence(plan, max_replacements)
    try:
        address, failed = next(sequence)
        while True:
            record = settle_q12_record(engine.query(address), failed)
            records.append(record)
            address, failed = sequence.send(record)
    except StopIteration:
        pass
    return plan, records


class CollectionCampaign:
    """The Q1/Q2 stratified-sample querying campaign."""

    def __init__(
        self,
        world: World,
        policy: SamplingPolicy | None = None,
        engine_config: EngineConfig | None = None,
        max_replacements: int = 2,
    ):
        if max_replacements < 0:
            raise ValueError("max_replacements must be non-negative")
        self._world = world
        self._policy = policy or SamplingPolicy()
        self._engine_config = engine_config
        self._max_replacements = max_replacements

    def run(
        self,
        isps: tuple[str, ...] = ("att", "centurylink", "frontier", "consolidated"),
        states: tuple[str, ...] | None = None,
    ) -> CollectionResult:
        """Collect for every (ISP, state) cell with a CAF footprint."""
        result = CollectionResult(log=QueryLog())
        states = states or self._world.config.states
        for isp_id in isps:
            for state in states:
                by_cbg = self._world.caf_addresses_by_cbg(isp_id, state)
                for cbg, addresses in sorted(by_cbg.items()):
                    plan, records = run_q12_cell(
                        self._world, isp_id, cbg, addresses,
                        policy=self._policy,
                        engine_config=self._engine_config,
                        max_replacements=self._max_replacements,
                    )
                    result.plans[(isp_id, cbg)] = plan
                    result.cbg_totals[(isp_id, cbg)] = plan.population_size
                    result.log.extend(records)
        return result


@dataclass
class Q3Collection:
    """Everything the Q3 campaign produced."""

    log: QueryLog
    # address_id → incumbent mode: "caf", "monopoly", or "competition".
    modes: dict[str, str] = field(default_factory=dict)
    # block geoid → incumbent ISP.
    incumbents: dict[str, str] = field(default_factory=dict)
    # Blocks that passed the exclusivity filter and were queried.
    analyzed_blocks: tuple[str, ...] = ()


@dataclass
class Q3BlockOutcome:
    """One analyzed block's contribution to the Q3 campaign."""

    block_geoid: str
    incumbent_isp_id: str
    records: tuple[QueryRecord, ...]
    # address_id → incumbent mode ("caf", "monopoly", "competition").
    modes: dict[str, str] = field(default_factory=dict)


def q3_block_candidates(
    world: World, states: tuple[str, ...] | None = None
) -> list[str]:
    """The sorted census blocks the Q3 campaign will consider.

    Blocks are pre-filtered with Form 477 + the National Broadband Map
    to those served exclusively by BQT-supported ISPs (Section 4.3) and
    restricted to the requested states. Some candidates are still
    dropped at query time (:func:`run_q3_block` returns ``None`` when a
    block has no CAF or no non-CAF addresses); this list is the stable
    iteration order both the sequential and the sharded campaigns use.
    """
    states = states or world.config.q3_states
    fips = {world.geographies[abbr].state_fips for abbr in states}
    bqt_ids = set(world.websites)
    eligible = set(world.form477.blocks_served_exclusively_by(bqt_ids))
    eligible &= set(world.broadband_map.blocks_served_exclusively_by(bqt_ids))
    return [b for b in sorted(eligible) if b[:2] in fips]


def q3_query_sequence(
    caf_addresses: list[StreetAddress],
    non_caf: list[StreetAddress],
    cable_available: bool,
):
    """The Q3 block's query schedule, as a driver-agnostic coroutine.

    Yields ``(role, address, mode)`` steps: ``role`` selects the
    incumbent or cable engine, and ``mode`` is the address's incumbent
    mode as this step settles it (``"caf"`` for CAF addresses,
    ``"monopoly"`` for non-CAF, ``None`` for the cable probe — the
    driver upgrades the address to ``"competition"`` when the cable
    record is serviceable). Shared by :func:`run_q3_block` and the
    asyncio driver so the query order is identical under every backend.
    """
    for address in caf_addresses:
        yield ("incumbent", address, "caf")
    for address in non_caf:
        yield ("incumbent", address, "monopoly")
        if cable_available:
            yield ("cable", address, None)


def q3_block_setup(
    world: World,
    block_geoid: str,
    engine_config: EngineConfig | None = None,
):
    """The Q3 block drivers' shared prologue.

    Returns ``(outcome, engines, caf_addresses, non_caf)`` — a fresh
    :class:`Q3BlockOutcome` skeleton, the ``{"incumbent", "cable"}``
    engine map (cable ``None`` without overlap), and the two address
    lists — or ``None`` when the block is not analyzed (no CAF or no
    non-CAF addresses). Single-sourced so the blocking and asyncio
    drivers cannot drift in block eligibility or engine seeding.
    """
    competition = world.block_competition[block_geoid]
    incumbent = competition.incumbent_isp_id
    caf_addresses = world.caf_addresses_in_block(incumbent, block_geoid)
    non_caf = world.zillow.non_caf_in_block(block_geoid)
    if not caf_addresses or not non_caf:
        return None
    outcome = Q3BlockOutcome(
        block_geoid=block_geoid, incumbent_isp_id=incumbent, records=())
    engines = {
        "incumbent": world.engine_for(incumbent, engine_config),
        "cable": (world.engine_for(competition.cable_isp_id, engine_config)
                  if competition.cable_isp_id else None),
    }
    return outcome, engines, caf_addresses, non_caf


def run_q3_block(
    world: World,
    block_geoid: str,
    engine_config: EngineConfig | None = None,
) -> Q3BlockOutcome | None:
    """Query one Q3 census block against fresh engines.

    Every CAF and non-CAF address is queried against the incumbent;
    non-CAF addresses in cable-overlap blocks are additionally queried
    against the cable ISP, and their mode is *competition* exactly when
    the cable query returned serviceable. Returns ``None`` when the
    block has no CAF or no non-CAF addresses (it is not analyzed).
    """
    setup = q3_block_setup(world, block_geoid, engine_config)
    if setup is None:
        return None
    outcome, engines, caf_addresses, non_caf = setup
    records: list[QueryRecord] = []
    for role, address, mode in q3_query_sequence(
            caf_addresses, non_caf, engines["cable"] is not None):
        record = engines[role].query(address)
        records.append(record)
        settled = settle_q3_mode(mode, record)
        if settled is not None:
            outcome.modes[address.address_id] = settled
    outcome.records = tuple(records)
    return outcome


def collect_q3_dataset(
    world: World,
    engine_config: EngineConfig | None = None,
    states: tuple[str, ...] | None = None,
) -> Q3Collection:
    """Run the Q3 campaign over the world's analyzed blocks."""
    collection = Q3Collection(log=QueryLog())
    analyzed: list[str] = []
    for block_geoid in q3_block_candidates(world, states):
        outcome = run_q3_block(world, block_geoid, engine_config)
        if outcome is None:
            continue
        analyzed.append(block_geoid)
        collection.incumbents[block_geoid] = outcome.incumbent_isp_id
        collection.log.extend(outcome.records)
        collection.modes.update(outcome.modes)
    collection.analyzed_blocks = tuple(analyzed)
    return collection
