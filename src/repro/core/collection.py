"""Data-collection campaigns.

Two campaigns mirror the paper's two collections:

* :class:`CollectionCampaign` — the Q1/Q2 campaign: for every
  (ISP, state) cell, sample each CBG per the policy, query through BQT,
  and when an address ends ``UNKNOWN`` draw a replacement address from
  the same CBG's reserve (up to ``max_replacements`` per failure).
* :func:`collect_q3_dataset` — the Q3 campaign: in analyzed blocks,
  query the incumbent at *every* CAF and non-CAF address, and the
  overlapping cable ISP at non-CAF addresses, then assign each non-CAF
  address its mode (monopoly vs competition) from the cable outcome.

Both campaigns decompose into *cells* — one (ISP, CBG) sample for
Q1/Q2 (:func:`run_q12_cell`), one census block for Q3
(:func:`run_q3_block`) — each queried through a fresh engine so a
cell's records depend only on the world seed and the cell's own
addresses, never on which other cells ran before it. That independence
is what lets :mod:`repro.runtime` shard a campaign across processes and
merge the shard logs back into a result bit-identical to this module's
sequential loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.addresses.models import StreetAddress
from repro.bqt.engine import EngineConfig
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.sampling import SamplePlan, SamplingPolicy, plan_cbg_sample
from repro.synth.world import World

__all__ = [
    "CollectionResult",
    "CollectionCampaign",
    "Q3Collection",
    "Q3BlockOutcome",
    "collect_q3_dataset",
    "q3_block_candidates",
    "run_q12_cell",
    "run_q3_block",
]


@dataclass
class CollectionResult:
    """Everything the Q1/Q2 campaign produced."""

    log: QueryLog
    # (isp_id, cbg) → the sample plan used.
    plans: dict[tuple[str, str], SamplePlan] = field(default_factory=dict)
    # (isp_id, cbg) → number of CAF addresses in the CBG (the weights).
    cbg_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def queried_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses attempted (Figure 7)."""
        plan = self.plans[(isp_id, cbg)]
        attempted = {r.address_id for r in self.log.for_isp(isp_id)
                     if r.block_group_geoid == cbg}
        if plan.population_size == 0:
            return 0.0
        return len(attempted) / plan.population_size

    def collected_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses with conclusive results
        (Figure 8)."""
        plan = self.plans[(isp_id, cbg)]
        conclusive = {r.address_id for r in self.log.for_isp(isp_id)
                      if r.block_group_geoid == cbg and r.status.is_conclusive}
        if plan.population_size == 0:
            return 0.0
        return len(conclusive) / plan.population_size


def _as_replacement(record: QueryRecord, failed: StreetAddress) -> QueryRecord:
    return QueryRecord(
        isp_id=record.isp_id,
        address_id=record.address_id,
        block_geoid=record.block_geoid,
        state_abbreviation=record.state_abbreviation,
        status=record.status,
        plans=record.plans,
        error_category=record.error_category,
        attempts=record.attempts,
        elapsed_seconds=record.elapsed_seconds,
        replacement_for=failed.address_id,
    )


def run_q12_cell(
    world: World,
    isp_id: str,
    cbg: str,
    addresses: list[StreetAddress],
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
) -> tuple[SamplePlan, list[QueryRecord]]:
    """Query one (ISP, CBG) cell against a fresh engine.

    The cell is the atomic unit of the Q1/Q2 campaign: the sample plan
    is deterministic in (world seed, CBG, addresses), and the fresh
    engine (with its fresh proxy pool) makes the record stream
    deterministic in the same inputs — independent of every other cell.
    """
    if max_replacements < 0:
        raise ValueError("max_replacements must be non-negative")
    policy = policy or SamplingPolicy()
    engine = world.engine_for(isp_id, engine_config)
    plan = plan_cbg_sample(cbg, addresses, policy, seed=world.config.seed)
    records: list[QueryRecord] = []
    reserve = list(plan.reserve)
    for address in plan.selected:
        record = engine.query(address)
        records.append(record)
        failed = address
        replacements_used = 0
        while (record.status is QueryStatus.UNKNOWN
               and replacements_used < max_replacements
               and reserve):
            replacement = reserve.pop(0)
            record = _as_replacement(engine.query(replacement), failed)
            records.append(record)
            failed = replacement
            replacements_used += 1
    return plan, records


class CollectionCampaign:
    """The Q1/Q2 stratified-sample querying campaign."""

    def __init__(
        self,
        world: World,
        policy: SamplingPolicy | None = None,
        engine_config: EngineConfig | None = None,
        max_replacements: int = 2,
    ):
        if max_replacements < 0:
            raise ValueError("max_replacements must be non-negative")
        self._world = world
        self._policy = policy or SamplingPolicy()
        self._engine_config = engine_config
        self._max_replacements = max_replacements

    def run(
        self,
        isps: tuple[str, ...] = ("att", "centurylink", "frontier", "consolidated"),
        states: tuple[str, ...] | None = None,
    ) -> CollectionResult:
        """Collect for every (ISP, state) cell with a CAF footprint."""
        result = CollectionResult(log=QueryLog())
        states = states or self._world.config.states
        for isp_id in isps:
            for state in states:
                by_cbg = self._world.caf_addresses_by_cbg(isp_id, state)
                for cbg, addresses in sorted(by_cbg.items()):
                    plan, records = run_q12_cell(
                        self._world, isp_id, cbg, addresses,
                        policy=self._policy,
                        engine_config=self._engine_config,
                        max_replacements=self._max_replacements,
                    )
                    result.plans[(isp_id, cbg)] = plan
                    result.cbg_totals[(isp_id, cbg)] = plan.population_size
                    result.log.extend(records)
        return result


@dataclass
class Q3Collection:
    """Everything the Q3 campaign produced."""

    log: QueryLog
    # address_id → incumbent mode: "caf", "monopoly", or "competition".
    modes: dict[str, str] = field(default_factory=dict)
    # block geoid → incumbent ISP.
    incumbents: dict[str, str] = field(default_factory=dict)
    # Blocks that passed the exclusivity filter and were queried.
    analyzed_blocks: tuple[str, ...] = ()


@dataclass
class Q3BlockOutcome:
    """One analyzed block's contribution to the Q3 campaign."""

    block_geoid: str
    incumbent_isp_id: str
    records: tuple[QueryRecord, ...]
    # address_id → incumbent mode ("caf", "monopoly", "competition").
    modes: dict[str, str] = field(default_factory=dict)


def q3_block_candidates(
    world: World, states: tuple[str, ...] | None = None
) -> list[str]:
    """The sorted census blocks the Q3 campaign will consider.

    Blocks are pre-filtered with Form 477 + the National Broadband Map
    to those served exclusively by BQT-supported ISPs (Section 4.3) and
    restricted to the requested states. Some candidates are still
    dropped at query time (:func:`run_q3_block` returns ``None`` when a
    block has no CAF or no non-CAF addresses); this list is the stable
    iteration order both the sequential and the sharded campaigns use.
    """
    states = states or world.config.q3_states
    fips = {world.geographies[abbr].state_fips for abbr in states}
    bqt_ids = set(world.websites)
    eligible = set(world.form477.blocks_served_exclusively_by(bqt_ids))
    eligible &= set(world.broadband_map.blocks_served_exclusively_by(bqt_ids))
    return [b for b in sorted(eligible) if b[:2] in fips]


def run_q3_block(
    world: World,
    block_geoid: str,
    engine_config: EngineConfig | None = None,
) -> Q3BlockOutcome | None:
    """Query one Q3 census block against fresh engines.

    Every CAF and non-CAF address is queried against the incumbent;
    non-CAF addresses in cable-overlap blocks are additionally queried
    against the cable ISP, and their mode is *competition* exactly when
    the cable query returned serviceable. Returns ``None`` when the
    block has no CAF or no non-CAF addresses (it is not analyzed).
    """
    competition = world.block_competition[block_geoid]
    incumbent = competition.incumbent_isp_id
    caf_addresses = world.caf_addresses_in_block(incumbent, block_geoid)
    non_caf = world.zillow.non_caf_in_block(block_geoid)
    if not caf_addresses or not non_caf:
        return None

    outcome = Q3BlockOutcome(
        block_geoid=block_geoid, incumbent_isp_id=incumbent, records=())
    records: list[QueryRecord] = []
    incumbent_engine = world.engine_for(incumbent, engine_config)
    for address in caf_addresses:
        records.append(incumbent_engine.query(address))
        outcome.modes[address.address_id] = "caf"
    cable_engine = (world.engine_for(competition.cable_isp_id, engine_config)
                    if competition.cable_isp_id else None)
    for address in non_caf:
        records.append(incumbent_engine.query(address))
        mode = "monopoly"
        if cable_engine is not None:
            cable_record = cable_engine.query(address)
            records.append(cable_record)
            if cable_record.status is QueryStatus.SERVICEABLE:
                mode = "competition"
        outcome.modes[address.address_id] = mode
    outcome.records = tuple(records)
    return outcome


def collect_q3_dataset(
    world: World,
    engine_config: EngineConfig | None = None,
    states: tuple[str, ...] | None = None,
) -> Q3Collection:
    """Run the Q3 campaign over the world's analyzed blocks."""
    collection = Q3Collection(log=QueryLog())
    analyzed: list[str] = []
    for block_geoid in q3_block_candidates(world, states):
        outcome = run_q3_block(world, block_geoid, engine_config)
        if outcome is None:
            continue
        analyzed.append(block_geoid)
        collection.incumbents[block_geoid] = outcome.incumbent_isp_id
        collection.log.extend(outcome.records)
        collection.modes.update(outcome.modes)
    collection.analyzed_blocks = tuple(analyzed)
    return collection
