"""Data-collection campaigns.

Two campaigns mirror the paper's two collections:

* :class:`CollectionCampaign` — the Q1/Q2 campaign: for every
  (ISP, state) cell, sample each CBG per the policy, query through BQT,
  and when an address ends ``UNKNOWN`` draw a replacement address from
  the same CBG's reserve (up to ``max_replacements`` per failure).
* :func:`collect_q3_dataset` — the Q3 campaign: in analyzed blocks,
  query the incumbent at *every* CAF and non-CAF address, and the
  overlapping cable ISP at non-CAF addresses, then assign each non-CAF
  address its mode (monopoly vs competition) from the cable outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.addresses.models import StreetAddress
from repro.bqt.engine import BqtEngine, EngineConfig
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.sampling import SamplePlan, SamplingPolicy, plan_cbg_sample
from repro.synth.world import World

__all__ = [
    "CollectionResult",
    "CollectionCampaign",
    "Q3Collection",
    "collect_q3_dataset",
]


@dataclass
class CollectionResult:
    """Everything the Q1/Q2 campaign produced."""

    log: QueryLog
    # (isp_id, cbg) → the sample plan used.
    plans: dict[tuple[str, str], SamplePlan] = field(default_factory=dict)
    # (isp_id, cbg) → number of CAF addresses in the CBG (the weights).
    cbg_totals: dict[tuple[str, str], int] = field(default_factory=dict)

    def queried_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses attempted (Figure 7)."""
        plan = self.plans[(isp_id, cbg)]
        attempted = {r.address_id for r in self.log.for_isp(isp_id)
                     if r.block_group_geoid == cbg}
        if plan.population_size == 0:
            return 0.0
        return len(attempted) / plan.population_size

    def collected_fraction(self, isp_id: str, cbg: str) -> float:
        """Fraction of the CBG's addresses with conclusive results
        (Figure 8)."""
        plan = self.plans[(isp_id, cbg)]
        conclusive = {r.address_id for r in self.log.for_isp(isp_id)
                      if r.block_group_geoid == cbg and r.status.is_conclusive}
        if plan.population_size == 0:
            return 0.0
        return len(conclusive) / plan.population_size


class CollectionCampaign:
    """The Q1/Q2 stratified-sample querying campaign."""

    def __init__(
        self,
        world: World,
        policy: SamplingPolicy | None = None,
        engine_config: EngineConfig | None = None,
        max_replacements: int = 2,
    ):
        if max_replacements < 0:
            raise ValueError("max_replacements must be non-negative")
        self._world = world
        self._policy = policy or SamplingPolicy()
        self._engine_config = engine_config
        self._max_replacements = max_replacements

    def run(
        self,
        isps: tuple[str, ...] = ("att", "centurylink", "frontier", "consolidated"),
        states: tuple[str, ...] | None = None,
    ) -> CollectionResult:
        """Collect for every (ISP, state) cell with a CAF footprint."""
        result = CollectionResult(log=QueryLog())
        states = states or self._world.config.states
        for isp_id in isps:
            engine = self._world.engine_for(isp_id, self._engine_config)
            for state in states:
                by_cbg = self._world.caf_addresses_by_cbg(isp_id, state)
                for cbg, addresses in sorted(by_cbg.items()):
                    plan = plan_cbg_sample(
                        cbg, addresses, self._policy, seed=self._world.config.seed
                    )
                    result.plans[(isp_id, cbg)] = plan
                    result.cbg_totals[(isp_id, cbg)] = plan.population_size
                    self._query_cbg(engine, plan, result.log)
        return result

    def _query_cbg(self, engine: BqtEngine, plan: SamplePlan, log: QueryLog) -> None:
        reserve = list(plan.reserve)
        for address in plan.selected:
            record = engine.query(address)
            log.append(record)
            failed = address
            replacements_used = 0
            while (record.status is QueryStatus.UNKNOWN
                   and replacements_used < self._max_replacements
                   and reserve):
                replacement = reserve.pop(0)
                record = self._as_replacement(engine.query(replacement), failed)
                log.append(record)
                failed = replacement
                replacements_used += 1

    @staticmethod
    def _as_replacement(record: QueryRecord, failed: StreetAddress) -> QueryRecord:
        return QueryRecord(
            isp_id=record.isp_id,
            address_id=record.address_id,
            block_geoid=record.block_geoid,
            state_abbreviation=record.state_abbreviation,
            status=record.status,
            plans=record.plans,
            error_category=record.error_category,
            attempts=record.attempts,
            elapsed_seconds=record.elapsed_seconds,
            replacement_for=failed.address_id,
        )


@dataclass
class Q3Collection:
    """Everything the Q3 campaign produced."""

    log: QueryLog
    # address_id → incumbent mode: "caf", "monopoly", or "competition".
    modes: dict[str, str] = field(default_factory=dict)
    # block geoid → incumbent ISP.
    incumbents: dict[str, str] = field(default_factory=dict)
    # Blocks that passed the exclusivity filter and were queried.
    analyzed_blocks: tuple[str, ...] = ()


def collect_q3_dataset(
    world: World,
    engine_config: EngineConfig | None = None,
    states: tuple[str, ...] | None = None,
) -> Q3Collection:
    """Run the Q3 campaign over the world's analyzed blocks.

    Census blocks are pre-filtered with Form 477 + the National
    Broadband Map to those served exclusively by BQT-supported ISPs
    (Section 4.3), then every CAF and non-CAF address in them is
    queried against the incumbent; non-CAF addresses in cable-overlap
    blocks are additionally queried against the cable ISP, and their
    mode is *competition* exactly when the cable query returned
    serviceable.
    """
    states = states or world.config.q3_states
    state_fips = {  # abbreviations → FIPS prefixes for block filtering
        abbr: world.geographies[abbr].state_fips for abbr in states
    }
    bqt_ids = set(world.websites)
    eligible = set(world.form477.blocks_served_exclusively_by(bqt_ids))
    eligible &= set(world.broadband_map.blocks_served_exclusively_by(bqt_ids))

    engines: dict[str, BqtEngine] = {}

    def engine_for(isp_id: str) -> BqtEngine:
        if isp_id not in engines:
            engines[isp_id] = world.engine_for(isp_id, engine_config)
        return engines[isp_id]

    collection = Q3Collection(log=QueryLog())
    analyzed: list[str] = []
    for block_geoid in sorted(eligible):
        if block_geoid[:2] not in set(state_fips.values()):
            continue
        competition = world.block_competition[block_geoid]
        incumbent = competition.incumbent_isp_id
        caf_addresses = world.caf_addresses_in_block(incumbent, block_geoid)
        non_caf = world.zillow.non_caf_in_block(block_geoid)
        if not caf_addresses or not non_caf:
            continue
        analyzed.append(block_geoid)
        collection.incumbents[block_geoid] = incumbent

        incumbent_engine = engine_for(incumbent)
        for address in caf_addresses:
            collection.log.append(incumbent_engine.query(address))
            collection.modes[address.address_id] = "caf"
        cable_engine = (engine_for(competition.cable_isp_id)
                        if competition.cable_isp_id else None)
        for address in non_caf:
            collection.log.append(incumbent_engine.query(address))
            mode = "monopoly"
            if cable_engine is not None:
                cable_record = cable_engine.query(address)
                collection.log.append(cable_record)
                if cable_record.status is QueryStatus.SERVICEABLE:
                    mode = "competition"
            collection.modes[address.address_id] = mode
    collection.analyzed_blocks = tuple(analyzed)
    return collection
