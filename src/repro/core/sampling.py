"""The paper's CBG-stratified sampling strategy.

Section 3.1: within each census block group, sample all CAF addresses
when there are at most 30; otherwise sample the greater of 30 and 10%
of the CBG's addresses. The remaining addresses form a *reserve* used
to replace addresses whose queries repeatedly fail (Section 3.2: "if a
query fails multiple times for a specific address, we select a new
address from the same census block group").
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.addresses.models import StreetAddress
from repro.stats.distributions import stable_rng

__all__ = ["SamplingPolicy", "SamplePlan", "plan_cbg_sample"]


@dataclass(frozen=True)
class SamplingPolicy:
    """Parameters of the stratified sampling rule."""

    min_samples: int = 30
    sampling_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if not 0.0 < self.sampling_fraction <= 1.0:
            raise ValueError("sampling_fraction must be in (0, 1]")

    def target_for(self, cbg_address_count: int) -> int:
        """How many addresses to query in a CBG of the given size."""
        if cbg_address_count < 0:
            raise ValueError("address count must be non-negative")
        if cbg_address_count <= self.min_samples:
            return cbg_address_count
        return max(self.min_samples, ceil(self.sampling_fraction * cbg_address_count))


@dataclass(frozen=True)
class SamplePlan:
    """The sample and replacement reserve for one CBG."""

    block_group_geoid: str
    selected: tuple[StreetAddress, ...]
    reserve: tuple[StreetAddress, ...]
    population_size: int

    def __post_init__(self) -> None:
        if len(self.selected) + len(self.reserve) > self.population_size:
            raise ValueError("sample plus reserve exceeds the population")

    @property
    def sampling_rate(self) -> float:
        """Fraction of the CBG's addresses selected for querying."""
        if self.population_size == 0:
            return 0.0
        return len(self.selected) / self.population_size


def plan_cbg_sample(
    block_group_geoid: str,
    addresses: list[StreetAddress],
    policy: SamplingPolicy,
    seed: int = 0,
) -> SamplePlan:
    """Draw the stratified sample for one CBG.

    Selection is a uniform draw without replacement, deterministic per
    (seed, CBG): the paper's robustness claim (Appendix 8.2) is about
    *rates*, and a stable draw makes every experiment repeatable.
    """
    wrong = [a.address_id for a in addresses
             if a.block_group_geoid != block_group_geoid]
    if wrong:
        raise ValueError(
            f"addresses outside CBG {block_group_geoid}: {wrong[:3]}"
        )
    rng = stable_rng(seed, "sample", block_group_geoid)
    target = policy.target_for(len(addresses))
    order = rng.permutation(len(addresses))
    selected = tuple(addresses[int(i)] for i in order[:target])
    reserve = tuple(addresses[int(i)] for i in order[target:])
    return SamplePlan(
        block_group_geoid=block_group_geoid,
        selected=selected,
        reserve=reserve,
        population_size=len(addresses),
    )
