"""Q2 — compliance analysis (Section 4.2).

Computes the weighted compliance rate and reproduces Table 1: for each
ISP, the distribution of *certified* download speeds (from the USAC CAF
Map) against the distribution of *advertised* maximum speeds (from the
BQT audit), with unserved addresses counted in the advertised "0"
bucket. Also checks rate (price) compliance against the urban-rate
benchmark, which the paper found ISPs always satisfy.
"""

from __future__ import annotations

import numpy as np

from repro.core.audit import AuditDataset
from repro.isp.plans import SPEED_TIER_LABELS, tier_label_for_speed
from repro.tabular import Table
from repro.usac.dataset import CafMapDataset

__all__ = ["ComplianceAnalysis", "advertised_tier_table", "certified_tier_table"]


def advertised_tier_table(audit: AuditDataset, isp_id: str) -> dict[str, float]:
    """Advertised-tier distribution for one ISP (Table 1 right columns).

    Percentages over all conclusive addresses; unserved addresses land
    in the "0" bucket, as in the paper ("we mark the advertised speed
    as 0 for the unserved addresses").
    """
    sub = audit.table.where_equal(isp_id=isp_id)
    if len(sub) == 0:
        raise ValueError(f"no audit rows for ISP {isp_id!r}")
    counts = sub.value_counts("tier_label")
    total = len(sub)
    return {label: 100.0 * counts.get(label, 0) / total
            for label in SPEED_TIER_LABELS if counts.get(label)}


def certified_tier_table(caf_map: CafMapDataset, isp_id: str) -> dict[str, float]:
    """Certified-speed distribution for one ISP (Table 1 left columns)."""
    records = caf_map.for_isp(isp_id)
    if not records:
        raise ValueError(f"no CAF Map records for ISP {isp_id!r}")
    counts: dict[str, int] = {}
    for record in records:
        label = tier_label_for_speed(record.certified_download_mbps)
        counts[label] = counts.get(label, 0) + 1
    total = len(records)
    return {label: 100.0 * count / total
            for label, count in sorted(counts.items())}


class ComplianceAnalysis:
    """All Q2 views over one audit dataset."""

    def __init__(self, audit: AuditDataset, caf_map: CafMapDataset | None = None):
        self._audit = audit
        self._caf_map = caf_map

    def aggregate_rate(self) -> float:
        """The headline weighted compliance rate (paper: 33.03%)."""
        return self._audit.compliance_rate()

    def rate_by_isp(self) -> dict[str, float]:
        """Weighted compliance per ISP (paper: AT&T 16.58% …)."""
        return {isp: self._audit.compliance_rate(isp_id=isp)
                for isp in self._audit.isps()}

    def rate_by_state(self) -> dict[str, float]:
        """Weighted compliance per state."""
        return {state: self._audit.compliance_rate(state=state)
                for state in self._audit.states()}

    def table1(self) -> Table:
        """The full certified-vs-advertised table across ISPs."""
        rows = []
        for isp in self._audit.isps():
            advertised = advertised_tier_table(self._audit, isp)
            certified = (certified_tier_table(self._caf_map, isp)
                         if self._caf_map is not None else {})
            labels = sorted(set(advertised) | set(certified),
                            key=_tier_sort_key)
            for label in labels:
                rows.append({
                    "isp_id": isp,
                    "tier": label,
                    "certified_pct": certified.get(label, 0.0),
                    "advertised_pct": advertised.get(label, 0.0),
                })
        return Table.from_rows(rows)

    def table1_wide(self) -> Table:
        """Table 1 in the paper's wide layout: one row per tier, one
        certified/advertised column pair per ISP."""
        from repro.tabular import pivot

        wide = pivot(self.table1(), index="tier", columns="isp_id",
                     values=["certified_pct", "advertised_pct"], fill=0.0)
        order = sorted(range(len(wide)),
                       key=lambda i: _tier_sort_key(wide["tier"][i]))
        return wide.take(order)

    # ------------------------------------------------------------------
    # Rate (price) compliance
    # ------------------------------------------------------------------
    def price_range_for_tier(self, download_mbps: float,
                             tolerance: float = 2.5) -> tuple[float, float]:
        """Observed price range for served plans near one speed tier."""
        table = self._audit.table
        mask = (np.abs(table["advertised_download_mbps"] - download_mbps)
                <= tolerance) & table["served"].astype(bool)
        prices = table.mask(mask)["best_price_usd"]
        prices = prices[~np.isnan(prices)]
        if prices.size == 0:
            raise ValueError(f"no served plans near {download_mbps} Mbps")
        return float(prices.min()), float(prices.max())

    def rate_compliance_fraction(self) -> float:
        """Fraction of served addresses whose best plan is within the
        tier benchmark (the paper found this to be ~1.0)."""
        table = self._audit.table
        served = table.mask(table["served"].astype(bool))
        compliant = 0
        checked = 0
        standard = self._audit.standard
        for row in served.iter_rows():
            price = row["best_price_usd"]
            speed = row["advertised_download_mbps"]
            if np.isnan(price) or speed <= 0:
                continue
            checked += 1
            compliant += price <= standard.rate_cap_for(max(speed, 10.0))
        if checked == 0:
            raise ValueError("no priced plans to check")
        return compliant / checked

    def non_compliant_served_fraction(self) -> float:
        """Among served addresses, the unweighted fraction failing the
        service-quality standard (the '66.97% of CAF addresses' angle
        uses the weighted complement; this is the diagnostic view)."""
        table = self._audit.table
        served = table.mask(table["served"].astype(bool))
        if len(served) == 0:
            raise ValueError("no served addresses")
        return 1.0 - float(np.mean(served["compliant"].astype(float)))


def _tier_sort_key(label: str) -> tuple[int, float, str]:
    """Sort tiers numerically with named plans grouped after '0'."""
    try:
        return (0, float(label), label)
    except ValueError:
        pass
    if label.endswith("+"):
        return (0, float(label[:-1]), label)
    if "-" in label and label[0].isdigit():
        return (0, float(label.split("-")[0]), label)
    return (1, 0.0, label)
