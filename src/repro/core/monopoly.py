"""Q3 — regulated vs unregulated monopolies (Section 4.3).

Consumes a :class:`~repro.core.collection.Q3Collection` and produces
every view of Figures 4, 5, 6 and 11:

* census blocks typed A (CAF + unregulated monopoly), B (CAF +
  competition) or C (all three modes), from the modes actually observed
  among *served* addresses;
* per-block average advertised download speed per mode;
* block outcomes (tie / CAF better / rival better) with a relative
  tie tolerance;
* speed CDFs and percentage-increase CDFs conditioned on who wins;
* CAF speed distributions in Type A vs Type B blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bqt.responses import QueryStatus
from repro.core.collection import Q3Collection
from repro.stats.ecdf import ECDF
from repro.tabular import Table

__all__ = ["BlockComparison", "MonopolyAnalysis", "analyze_q3"]


@dataclass(frozen=True)
class BlockComparison:
    """Per-mode average advertised speeds in one census block."""

    block_geoid: str
    incumbent_isp_id: str
    caf_avg_mbps: float
    monopoly_avg_mbps: float | None
    competition_avg_mbps: float | None
    n_caf_served: int
    n_monopoly_served: int
    n_competition_served: int

    def __post_init__(self) -> None:
        if self.n_caf_served <= 0:
            raise ValueError("a comparison block needs served CAF addresses")
        if self.monopoly_avg_mbps is None and self.competition_avg_mbps is None:
            raise ValueError("a comparison block needs a non-CAF mode")

    @property
    def block_type(self) -> str:
        """"A", "B", or "C" per the paper's typing."""
        has_monopoly = self.monopoly_avg_mbps is not None
        has_competition = self.competition_avg_mbps is not None
        if has_monopoly and has_competition:
            return "C"
        return "A" if has_monopoly else "B"

    def outcome_vs(self, rival_avg: float, tie_tolerance: float) -> str:
        """"tie" / "caf" / "rival" with a relative tolerance."""
        scale = max(self.caf_avg_mbps, rival_avg, 1e-9)
        if abs(self.caf_avg_mbps - rival_avg) / scale <= tie_tolerance:
            return "tie"
        return "caf" if self.caf_avg_mbps > rival_avg else "rival"

    def pct_increase(self, rival_avg: float) -> float:
        """Winner-over-loser percentage increase in average speed."""
        low, high = sorted((self.caf_avg_mbps, rival_avg))
        if low <= 0:
            raise ValueError("cannot compute a percentage increase from 0")
        return 100.0 * (high - low) / low


def _mode_average(speeds: list[float]) -> float | None:
    return float(np.mean(speeds)) if speeds else None


def analyze_q3(
    collection: Q3Collection,
    tie_tolerance: float = 0.02,
    metric: str = "speed",
) -> "MonopolyAnalysis":
    """Build block comparisons from a Q3 collection.

    Mirrors the paper's filters: blocks are kept only when the
    incumbent serves at least one CAF address with visible plans *and*
    at least one non-CAF address ("we also filter out census blocks
    where we do not find any non-CAF address served by the CAF-funded
    ISP").

    ``metric`` selects the service-quality measure the block averages
    compare: ``"speed"`` (maximum advertised download Mbps, the paper's
    primary view) or ``"carriage"`` (advertised Mbps per dollar —
    Section 4.3: "We also explored answering this question using the
    carriage value metric and observed similar trends"). The
    ``*_avg_mbps`` field names keep the primary metric's units; under
    ``"carriage"`` they hold Mbps/$ values.
    """
    if not 0 <= tie_tolerance < 1:
        raise ValueError("tie_tolerance must be in [0, 1)")
    if metric not in ("speed", "carriage"):
        raise ValueError("metric must be 'speed' or 'carriage'")
    speeds: dict[tuple[str, str], list[float]] = {}
    served_counts: dict[tuple[str, str], int] = {}
    for record in collection.log:
        if record.status is not QueryStatus.SERVICEABLE:
            continue
        incumbent = collection.incumbents.get(record.block_geoid)
        if incumbent is None or record.isp_id != incumbent:
            continue  # cable-ISP records only establish modes
        mode = collection.modes.get(record.address_id)
        if mode is None:
            continue
        key = (record.block_geoid, mode)
        served_counts[key] = served_counts.get(key, 0) + 1
        best = record.best_plan
        if best is not None:
            value = (best.download_mbps if metric == "speed"
                     else best.carriage_value)
            speeds.setdefault(key, []).append(value)

    comparisons = []
    for block_geoid in collection.analyzed_blocks:
        caf_speeds = speeds.get((block_geoid, "caf"), [])
        if not caf_speeds:
            continue
        monopoly_avg = _mode_average(speeds.get((block_geoid, "monopoly"), []))
        competition_avg = _mode_average(speeds.get((block_geoid, "competition"), []))
        if monopoly_avg is None and competition_avg is None:
            continue
        comparisons.append(BlockComparison(
            block_geoid=block_geoid,
            incumbent_isp_id=collection.incumbents[block_geoid],
            caf_avg_mbps=float(np.mean(caf_speeds)),
            monopoly_avg_mbps=monopoly_avg,
            competition_avg_mbps=competition_avg,
            n_caf_served=served_counts.get((block_geoid, "caf"), 0),
            n_monopoly_served=served_counts.get((block_geoid, "monopoly"), 0),
            n_competition_served=served_counts.get((block_geoid, "competition"), 0),
        ))
    return MonopolyAnalysis(comparisons, tie_tolerance)


class MonopolyAnalysis:
    """All Q3 views over the analyzed blocks."""

    def __init__(self, blocks: list[BlockComparison], tie_tolerance: float = 0.02):
        if not blocks:
            raise ValueError("no comparison blocks to analyze")
        self._blocks = list(blocks)
        self._tolerance = tie_tolerance

    @property
    def blocks(self) -> list[BlockComparison]:
        """All comparison blocks."""
        return list(self._blocks)

    def of_type(self, block_type: str) -> list[BlockComparison]:
        """Blocks of one type ("A", "B", or "C")."""
        if block_type not in ("A", "B", "C"):
            raise ValueError("block_type must be A, B or C")
        return [b for b in self._blocks if b.block_type == block_type]

    def type_counts(self) -> dict[str, int]:
        """Counts per block type (paper: 8.76k / 0.56k / 0.10k)."""
        counts = {"A": 0, "B": 0, "C": 0}
        for block in self._blocks:
            counts[block.block_type] += 1
        return counts

    # ------------------------------------------------------------------
    def _rival_avg(self, block: BlockComparison, rival_mode: str) -> float | None:
        if rival_mode == "monopoly":
            return block.monopoly_avg_mbps
        if rival_mode == "competition":
            return block.competition_avg_mbps
        raise ValueError("rival_mode must be 'monopoly' or 'competition'")

    def outcome_shares(self, block_type: str, rival_mode: str) -> dict[str, float]:
        """Tie/CAF/rival shares for one block type (Figures 4a/5a)."""
        relevant = []
        for block in self.of_type(block_type):
            rival = self._rival_avg(block, rival_mode)
            if rival is not None:
                relevant.append(block.outcome_vs(rival, self._tolerance))
        if not relevant:
            raise ValueError(f"no type-{block_type} blocks with {rival_mode} mode")
        n = len(relevant)
        return {
            "tie": relevant.count("tie") / n,
            "caf": relevant.count("caf") / n,
            "rival": relevant.count("rival") / n,
        }

    def speed_cdfs(
        self, block_type: str, rival_mode: str, winner: str
    ) -> tuple[ECDF, ECDF]:
        """(CAF, rival) speed CDFs over blocks where ``winner`` wins
        (Figures 4b, 5b, 11a, 11c)."""
        caf_speeds, rival_speeds = [], []
        for block in self.of_type(block_type):
            rival = self._rival_avg(block, rival_mode)
            if rival is None:
                continue
            if block.outcome_vs(rival, self._tolerance) == winner:
                caf_speeds.append(block.caf_avg_mbps)
                rival_speeds.append(rival)
        if not caf_speeds:
            raise ValueError(
                f"no type-{block_type} blocks where {winner!r} wins"
            )
        return ECDF(caf_speeds), ECDF(rival_speeds)

    def pct_increase_cdf(
        self, block_type: str, rival_mode: str, winner: str
    ) -> ECDF:
        """CDF of winner-over-loser percentage increases (Figures 4c,
        5c, 11b, 11d). Paper headline: Type A, CAF wins → median 75%,
        p80 400%."""
        increases = []
        for block in self.of_type(block_type):
            rival = self._rival_avg(block, rival_mode)
            if rival is None:
                continue
            if block.outcome_vs(rival, self._tolerance) == winner:
                increases.append(block.pct_increase(rival))
        if not increases:
            raise ValueError(
                f"no type-{block_type} blocks where {winner!r} wins"
            )
        return ECDF(increases)

    def caf_speed_cdf_by_type(self) -> dict[str, ECDF]:
        """CAF average-speed CDFs for Type A and Type B blocks
        (Figure 6a)."""
        out = {}
        for block_type in ("A", "B"):
            blocks = self.of_type(block_type)
            if blocks:
                out[block_type] = ECDF([b.caf_avg_mbps for b in blocks])
        return out

    def to_table(self) -> Table:
        """Flatten the comparisons for persistence/rendering."""
        rows = []
        for block in self._blocks:
            rows.append({
                "block_geoid": block.block_geoid,
                "incumbent": block.incumbent_isp_id,
                "type": block.block_type,
                "caf_avg_mbps": block.caf_avg_mbps,
                "monopoly_avg_mbps": (block.monopoly_avg_mbps
                                      if block.monopoly_avg_mbps is not None
                                      else float("nan")),
                "competition_avg_mbps": (block.competition_avg_mbps
                                         if block.competition_avg_mbps is not None
                                         else float("nan")),
                "n_caf_served": block.n_caf_served,
                "n_monopoly_served": block.n_monopoly_served,
                "n_competition_served": block.n_competition_served,
            })
        return Table.from_rows(rows)
