"""repro.runtime — sharded, resumable, cached campaign execution.

The paper's measurement campaign ran a fleet of containerized BQT
workers for weeks; this subsystem gives the reproduction the same
shape. It partitions a :class:`~repro.synth.world.World` into
deterministic shards of independent cells (:mod:`~repro.runtime
.shards`), runs them sequentially, on a process pool, and/or on
per-shard asyncio event loops that interleave sessions against
different storefronts — always under the per-storefront politeness cap
(:mod:`~repro.runtime.executor`, :mod:`repro.bqt.aio`) — merges
shard logs back into results bit-identical to the sequential campaign
(:mod:`~repro.runtime.merge`), leases shards to a fleet of worker
processes that stream checksummed results back over sockets
(:mod:`~repro.runtime.distributed`, ``backend="distributed"``, with a
coordinator-side autotuner that sizes the fleet for a target
wall-clock), checkpoints completed shards crash-safely so an
interrupted run resumes without recomputation (:mod:`~repro.runtime
.checkpoint`), and content-addresses finished audits so repeated
``ExperimentContext`` builds reuse one run (:mod:`~repro.runtime
.cache`, which also caches world builds by scenario and evicts
least-recently-used entries past ``REPRO_CACHE_MAX_BYTES``).

Entry points::

    from repro import run_full_audit
    from repro.runtime import RuntimeConfig

    report = run_full_audit(parallel=RuntimeConfig(
        shards=8, workers=4, backend="process+async", max_inflight=8))
"""

from repro.runtime.cache import (
    AuditCache,
    audit_digest,
    cache_dir_from_environment,
    cache_max_bytes_from_environment,
    world_digest,
)
from repro.runtime.checkpoint import CheckpointStore, campaign_fingerprint
from repro.runtime.distributed import (
    AutotunePlan,
    autotune_runtime_config,
    run_worker,
)
from repro.runtime.executor import (
    RuntimeConfig,
    ShardResult,
    dispatch_shards,
    execute_campaign,
    run_shard,
)
from repro.runtime.merge import merge_shard_results
from repro.runtime.shards import Q12Cell, ShardSpec, enumerate_q12_cells, plan_shards

__all__ = [
    "AuditCache",
    "AutotunePlan",
    "CheckpointStore",
    "Q12Cell",
    "RuntimeConfig",
    "ShardResult",
    "ShardSpec",
    "audit_digest",
    "autotune_runtime_config",
    "cache_dir_from_environment",
    "cache_max_bytes_from_environment",
    "world_digest",
    "campaign_fingerprint",
    "dispatch_shards",
    "enumerate_q12_cells",
    "execute_campaign",
    "merge_shard_results",
    "plan_shards",
    "run_shard",
    "run_worker",
]
