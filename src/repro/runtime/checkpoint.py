"""Shard checkpoints: interrupted campaigns resume, not restart.

Each completed shard is written as one JSON file the moment it
finishes, alongside a manifest that fingerprints the campaign
(scenario, sampling policy, ISP set, shard count). On resume the store
reloads every shard whose fingerprint matches and the executor runs
only the remainder; because shard records round-trip exactly (JSON
floats use shortest-round-trip ``repr``), the resumed merge is
bit-identical to an uninterrupted run.

The on-disk layout is an extension of the
:class:`~repro.persist.store.StudyStore` directory format — shard
files live in a ``shards/`` subdirectory and reuse the store's SHA-256
content checksums — so ``StudyStore(path).checkpoints(fingerprint)``
opens the same data.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.bqt.errors import ErrorCategory
from repro.bqt.logbook import QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.collection import Q3BlockOutcome
from repro.core.sampling import SamplingPolicy
from repro.isp.plans import BroadbandPlan
from repro.persist.store import _sha256
from repro.runtime.shards import Q12Cell
from repro.synth.scenario import ScenarioConfig

__all__ = ["CheckpointStore", "campaign_fingerprint"]

MANIFEST_NAME = "checkpoint.json"
FORMAT_VERSION = 1


def campaign_fingerprint(
    scenario: ScenarioConfig,
    policy: SamplingPolicy | None,
    isps: tuple[str, ...],
    shard_count: int,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
    max_replacements: int = 2,
) -> str:
    """Content digest identifying one campaign's checkpointable work.

    Everything that changes the shard partition or any shard's records
    must feed the digest, or resume could adopt another campaign's
    checkpoints: the scenario (seed included), sampling policy, ISP
    set, state subsets, replacement budget, and shard count.
    """
    policy = policy or SamplingPolicy()
    payload = {
        "format": FORMAT_VERSION,
        "scenario": asdict(scenario),
        "policy": asdict(policy),
        "isps": list(isps),
        "states": list(states or scenario.states),
        "q3_states": list(q3_states or scenario.q3_states),
        "max_replacements": max_replacements,
        "shard_count": shard_count,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# JSON codecs (exact round-trip: enums by value, floats via repr)
# ----------------------------------------------------------------------

def _plan_to_json(plan: BroadbandPlan) -> dict:
    return {
        "name": plan.name,
        "download_mbps": plan.download_mbps,
        "upload_mbps": plan.upload_mbps,
        "monthly_price_usd": plan.monthly_price_usd,
        "technology": plan.technology,
        "is_speed_guaranteed": plan.is_speed_guaranteed,
    }


def _plan_from_json(data: dict) -> BroadbandPlan:
    return BroadbandPlan(**data)


def _record_to_json(record: QueryRecord) -> dict:
    return {
        "isp_id": record.isp_id,
        "address_id": record.address_id,
        "block_geoid": record.block_geoid,
        "state_abbreviation": record.state_abbreviation,
        "status": record.status.value,
        "plans": [_plan_to_json(plan) for plan in record.plans],
        "error_category": (record.error_category.value
                           if record.error_category else None),
        "attempts": record.attempts,
        "elapsed_seconds": record.elapsed_seconds,
        "replacement_for": record.replacement_for,
    }


def _record_from_json(data: dict) -> QueryRecord:
    return QueryRecord(
        isp_id=data["isp_id"],
        address_id=data["address_id"],
        block_geoid=data["block_geoid"],
        state_abbreviation=data["state_abbreviation"],
        status=QueryStatus(data["status"]),
        plans=tuple(_plan_from_json(p) for p in data["plans"]),
        error_category=(ErrorCategory(data["error_category"])
                        if data["error_category"] else None),
        attempts=data["attempts"],
        elapsed_seconds=data["elapsed_seconds"],
        replacement_for=data["replacement_for"],
    )


def _shard_to_json(result: "ShardResult") -> dict:
    return {
        "index": result.index,
        "count": result.count,
        "q12": [
            {
                "isp_id": cell.isp_id,
                "state": cell.state,
                "cbg": cell.cbg,
                "records": [_record_to_json(r) for r in records],
            }
            for cell, records in result.q12_records.items()
        ],
        "q3": [
            {
                "block_geoid": block,
                "outcome": None if outcome is None else {
                    "incumbent_isp_id": outcome.incumbent_isp_id,
                    "records": [_record_to_json(r) for r in outcome.records],
                    "modes": outcome.modes,
                },
            }
            for block, outcome in result.q3_outcomes.items()
        ],
    }


def _shard_from_json(data: dict) -> "ShardResult":
    from repro.runtime.executor import ShardResult

    result = ShardResult(index=data["index"], count=data["count"])
    for entry in data["q12"]:
        cell = Q12Cell(isp_id=entry["isp_id"], state=entry["state"],
                       cbg=entry["cbg"])
        result.q12_records[cell] = tuple(
            _record_from_json(r) for r in entry["records"])
    for entry in data["q3"]:
        block = entry["block_geoid"]
        outcome = entry["outcome"]
        if outcome is None:
            result.q3_outcomes[block] = None
        else:
            result.q3_outcomes[block] = Q3BlockOutcome(
                block_geoid=block,
                incumbent_isp_id=outcome["incumbent_isp_id"],
                records=tuple(_record_from_json(r)
                              for r in outcome["records"]),
                modes=dict(outcome["modes"]),
            )
    return result


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class CheckpointStore:
    """One campaign's shard checkpoints under a directory."""

    def __init__(self, directory: str | Path, fingerprint: str):
        self._directory = Path(directory)
        self._fingerprint = fingerprint

    @property
    def directory(self) -> Path:
        """The checkpoint directory."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The campaign fingerprint these checkpoints belong to."""
        return self._fingerprint

    def shard_path(self, index: int) -> Path:
        """Path of one shard's checkpoint file."""
        return self._directory / f"shard-{index:04d}.json"

    def _manifest_path(self) -> Path:
        return self._directory / MANIFEST_NAME

    def _load_manifest(self) -> dict | None:
        path = self._manifest_path()
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            # A kill mid-write can truncate the manifest; treat it the
            # same as a corrupted shard file — recompute, don't crash.
            return None

    def _write_manifest(self, checksums: dict[str, str]) -> None:
        payload = {
            "format": FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "checksums": checksums,
        }
        self._manifest_path().write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")

    def save_shard(self, result: "ShardResult") -> Path:
        """Persist one completed shard; updates the manifest."""
        self._directory.mkdir(parents=True, exist_ok=True)
        manifest = self._load_manifest()
        if manifest is not None and manifest.get("fingerprint") != self._fingerprint:
            self.clear()
            manifest = None
        path = self.shard_path(result.index)
        path.write_text(json.dumps(_shard_to_json(result), sort_keys=True),
                        encoding="utf-8")
        checksums = dict(manifest["checksums"]) if manifest else {}
        checksums[path.name] = _sha256(path)
        self._write_manifest(checksums)
        return path

    def load_completed(self) -> dict[int, "ShardResult"]:
        """Reload every intact checkpointed shard of this campaign.

        Checkpoints from a different campaign (fingerprint mismatch) or
        with corrupted shard files are ignored.
        """
        manifest = self._load_manifest()
        if manifest is None or manifest.get("fingerprint") != self._fingerprint:
            return {}
        completed: dict[int, "ShardResult"] = {}
        for name, expected in manifest.get("checksums", {}).items():
            path = self._directory / name
            if not path.exists() or _sha256(path) != expected:
                continue
            result = _shard_from_json(
                json.loads(path.read_text(encoding="utf-8")))
            completed[result.index] = result
        return completed

    def clear(self) -> None:
        """Delete all checkpoint files (manifest included)."""
        if not self._directory.exists():
            return
        for path in self._directory.glob("shard-*.json"):
            path.unlink()
        manifest = self._manifest_path()
        if manifest.exists():
            manifest.unlink()
