"""Shard checkpoints: interrupted campaigns resume, not restart.

Each completed shard is written as one JSON file the moment it
finishes, alongside a manifest that fingerprints the campaign
(scenario, sampling policy, ISP set, shard count). On resume the store
reloads every shard whose fingerprint matches and the executor runs
only the remainder; because shard records round-trip exactly (JSON
floats use shortest-round-trip ``repr``), the resumed merge is
bit-identical to an uninterrupted run.

Crash safety is load-bearing here — with the distributed backend a
checkpoint directory survives machine failures, so every write must
leave the store readable no matter where the writer dies:

* every file (shard and manifest) is published with the
  tmp-then-``rename`` pattern, so readers never observe a half-written
  JSON document;
* each campaign's files live in a subdirectory named by a prefix of
  its fingerprint, so two campaigns sharing a checkpoint root can
  never clobber each other's work;
* the manifest is a cache, not the source of truth — when it is
  corrupt, missing, or stale, :meth:`CheckpointStore.load_completed`
  rebuilds it from the intact shard files and heals it on disk.

The on-disk layout is an extension of the
:class:`~repro.persist.store.StudyStore` directory format — shard
files live in a ``shards/`` subdirectory and reuse the store's SHA-256
content checksums — so ``StudyStore(path).checkpoints(fingerprint)``
opens the same data.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict
from pathlib import Path

from repro.bqt.errors import ErrorCategory
from repro.bqt.logbook import QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.collection import Q3BlockOutcome
from repro.core.sampling import SamplingPolicy
from repro.isp.plans import BroadbandPlan
from repro.obs.metrics import REGISTRY as _METRICS
from repro.persist.store import _sha256
from repro.runtime.atomicio import atomic_write_text, sweep_stale_tmp_files
from repro.runtime.cache import content_digest
from repro.runtime.shards import Q12Cell
from repro.runtime.storebase import FingerprintNamespacedStore
from repro.synth.scenario import ScenarioConfig

__all__ = ["CheckpointStore", "campaign_fingerprint"]

MANIFEST_NAME = "checkpoint.json"
FORMAT_VERSION = 1


def campaign_fingerprint(
    scenario: ScenarioConfig,
    policy: SamplingPolicy | None,
    isps: tuple[str, ...],
    shard_count: int,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
    max_replacements: int = 2,
) -> str:
    """Content digest identifying one campaign's checkpointable work.

    Everything that changes the shard partition or any shard's records
    must feed the digest, or resume could adopt another campaign's
    checkpoints: the scenario (seed included), sampling policy, ISP
    set, state subsets, replacement budget, and shard count.
    """
    policy = policy or SamplingPolicy()
    return content_digest({
        "format": FORMAT_VERSION,
        "scenario": asdict(scenario),
        "policy": asdict(policy),
        "isps": list(isps),
        "states": list(states or scenario.states),
        "q3_states": list(q3_states or scenario.q3_states),
        "max_replacements": max_replacements,
        "shard_count": shard_count,
    })


# ----------------------------------------------------------------------
# JSON codecs (exact round-trip: enums by value, floats via repr)
# ----------------------------------------------------------------------

def _plan_to_json(plan: BroadbandPlan) -> dict:
    return {
        "name": plan.name,
        "download_mbps": plan.download_mbps,
        "upload_mbps": plan.upload_mbps,
        "monthly_price_usd": plan.monthly_price_usd,
        "technology": plan.technology,
        "is_speed_guaranteed": plan.is_speed_guaranteed,
    }


def _plan_from_json(data: dict) -> BroadbandPlan:
    return BroadbandPlan(**data)


def _record_to_json(record: QueryRecord) -> dict:
    return {
        "isp_id": record.isp_id,
        "address_id": record.address_id,
        "block_geoid": record.block_geoid,
        "state_abbreviation": record.state_abbreviation,
        "status": record.status.value,
        "plans": [_plan_to_json(plan) for plan in record.plans],
        "error_category": (record.error_category.value
                           if record.error_category else None),
        "attempts": record.attempts,
        "elapsed_seconds": record.elapsed_seconds,
        "replacement_for": record.replacement_for,
    }


def _record_from_json(data: dict) -> QueryRecord:
    return QueryRecord(
        isp_id=data["isp_id"],
        address_id=data["address_id"],
        block_geoid=data["block_geoid"],
        state_abbreviation=data["state_abbreviation"],
        status=QueryStatus(data["status"]),
        plans=tuple(_plan_from_json(p) for p in data["plans"]),
        error_category=(ErrorCategory(data["error_category"])
                        if data["error_category"] else None),
        attempts=data["attempts"],
        elapsed_seconds=data["elapsed_seconds"],
        replacement_for=data["replacement_for"],
    )


def _shard_to_json(result: "ShardResult") -> dict:
    return {
        "index": result.index,
        "count": result.count,
        "q12": [
            {
                "isp_id": cell.isp_id,
                "state": cell.state,
                "cbg": cell.cbg,
                "records": [_record_to_json(r) for r in records],
            }
            for cell, records in result.q12_records.items()
        ],
        "q3": [
            {
                "block_geoid": block,
                "outcome": None if outcome is None else {
                    "incumbent_isp_id": outcome.incumbent_isp_id,
                    "records": [_record_to_json(r) for r in outcome.records],
                    "modes": outcome.modes,
                },
            }
            for block, outcome in result.q3_outcomes.items()
        ],
    }


def _shard_from_json(data: dict) -> "ShardResult":
    from repro.runtime.executor import ShardResult

    result = ShardResult(index=data["index"], count=data["count"])
    for entry in data["q12"]:
        cell = Q12Cell(isp_id=entry["isp_id"], state=entry["state"],
                       cbg=entry["cbg"])
        result.q12_records[cell] = tuple(
            _record_from_json(r) for r in entry["records"])
    for entry in data["q3"]:
        block = entry["block_geoid"]
        outcome = entry["outcome"]
        if outcome is None:
            result.q3_outcomes[block] = None
        else:
            result.q3_outcomes[block] = Q3BlockOutcome(
                block_geoid=block,
                incumbent_isp_id=outcome["incumbent_isp_id"],
                records=tuple(_record_from_json(r)
                              for r in outcome["records"]),
                modes=dict(outcome["modes"]),
            )
    return result


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

class CheckpointStore(FingerprintNamespacedStore):
    """One campaign's shard checkpoints under a directory.

    ``directory`` is the shared checkpoint *root*; this campaign's
    files live in :attr:`campaign_directory` (the base class's
    fingerprint-namespaced subdirectory). Namespacing (rather than a
    fingerprint check that deletes on mismatch) means campaigns that
    share a root can never destroy each other's checkpoints.
    """

    @property
    def campaign_directory(self) -> Path:
        """This campaign's namespaced subdirectory under the root."""
        return self.namespace_directory

    def shard_path(self, index: int) -> Path:
        """Path of one shard's checkpoint file."""
        return self.campaign_directory / f"shard-{index:04d}.json"

    def _manifest_path(self) -> Path:
        return self.campaign_directory / MANIFEST_NAME

    def _load_manifest(self) -> dict | None:
        # A kill mid-write cannot truncate the manifest any more
        # (writes are atomic), but a manifest written by older code or
        # damaged externally is still recoverable: ``None`` lets the
        # caller rebuild from the shard files instead of crashing.
        return self._read_json_document(self._manifest_path())

    def _write_manifest(self, checksums: dict[str, str]) -> None:
        payload = {
            "format": FORMAT_VERSION,
            "fingerprint": self._fingerprint,
            "checksums": checksums,
        }
        atomic_write_text(
            self._manifest_path(),
            json.dumps(payload, indent=2, sort_keys=True))

    def save_shard(self, result: "ShardResult") -> Path:
        """Persist one completed shard; updates the manifest."""
        self.campaign_directory.mkdir(parents=True, exist_ok=True)
        manifest = self._load_manifest()
        if (manifest is not None
                and manifest.get("fingerprint") != self._fingerprint):
            # The namespaced directory should only ever hold this
            # campaign's manifest; a foreign one means external
            # tampering. Never delete data over it — warn, and let the
            # rebuilt manifest supersede it.
            warnings.warn(
                f"checkpoint manifest under {self.campaign_directory} "
                f"claims fingerprint {manifest.get('fingerprint')!r}, "
                f"expected {self._fingerprint!r}; rebuilding the "
                f"manifest without deleting any shard files",
                stacklevel=2)
            manifest = None
        if manifest is not None:
            checksums = dict(manifest["checksums"])
        else:
            # Torn or foreign manifest: re-list the shard files already
            # on disk (parseable ones, hashed as they stand) instead of
            # starting from nothing — leaving them unlisted would
            # disable their integrity checks on every later load.
            checksums = {
                path.name: _sha256(path)
                for path in sorted(
                    self.campaign_directory.glob("shard-*.json"))
                if self._load_shard_file(path) is not None
            }
        path = self.shard_path(result.index)
        payload = json.dumps(_shard_to_json(result), sort_keys=True)
        atomic_write_text(path, payload)
        # Digest the in-memory payload: re-reading a multi-megabyte
        # file just written, on the serialized on_complete path, would
        # double checkpoint I/O.
        checksums[path.name] = hashlib.sha256(
            payload.encode("utf-8")).hexdigest()
        self._write_manifest(checksums)
        sweep_stale_tmp_files(self.campaign_directory)
        _METRICS.counter("checkpoint_shards_saved_total").inc()
        return path

    def _load_shard_file(self, path: Path) -> "ShardResult | None":
        """Parse one shard file, or None if it is corrupt/unreadable."""
        try:
            return _shard_from_json(
                json.loads(path.read_text(encoding="utf-8")))
        except (json.JSONDecodeError, OSError, KeyError, TypeError,
                ValueError):
            return None

    def _adopt_legacy_layout(self) -> None:
        """Migrate pre-namespacing checkpoints into the campaign dir.

        Before 1.3 a campaign's shard files and manifest lived at the
        checkpoint *root*. If a root manifest carries this campaign's
        fingerprint, its intact shard files — checksum-verified
        against the legacy manifest, with the same authority rule as
        :meth:`load_completed` — are copied into the namespaced
        directory (atomically) and the legacy files are removed, so
        ``--resume`` keeps working across the upgrade. A root manifest
        with a different fingerprint is another campaign's legacy data
        and is left untouched.
        """
        legacy_manifest = self._directory / MANIFEST_NAME
        if not legacy_manifest.exists():
            return
        # Unrecognizable or another campaign's legacy data: not ours
        # to clean up.
        legacy = self._owned_document(legacy_manifest)
        if legacy is None:
            return
        self.campaign_directory.mkdir(parents=True, exist_ok=True)
        for name, expected in legacy.get("checksums", {}).items():
            source = self._directory / name
            target = self.campaign_directory / name
            if not source.exists() or source == target:
                continue
            if (not target.exists()
                    and _sha256(source) == expected
                    and self._load_shard_file(source)):
                atomic_write_text(target,
                                  source.read_text(encoding="utf-8"))
            # Failed the checksum or the parse: bit rot — drop it and
            # let the shard recompute, exactly as load_completed does.
            source.unlink(missing_ok=True)
        legacy_manifest.unlink(missing_ok=True)

    def load_completed(self) -> dict[int, "ShardResult"]:
        """Reload every intact checkpointed shard of this campaign.

        The manifest is never trusted to be *complete*: shard files it
        does not list (a writer died between publishing the shard and
        updating the manifest, or the manifest itself was torn and
        parsed as nothing) are recovered by parsing them directly, and
        the healed manifest is written back. But for files the
        manifest *does* list, its SHA-256 checksum is authoritative: a
        mismatching file is skipped and recomputed, because damage
        that happens to stay parseable (bit rot on flaky storage)
        must not silently break the bit-identical-merge guarantee.
        The skip is self-correcting — the shard reruns, is re-saved,
        and the manifest entry is refreshed. Pre-1.3 root-level
        layouts are migrated into the campaign directory first.
        """
        self._adopt_legacy_layout()
        directory = self.campaign_directory
        if not directory.exists():
            return {}
        manifest = self._load_manifest()
        if manifest is not None and manifest.get("fingerprint") != self._fingerprint:
            manifest = None
        known = manifest.get("checksums", {}) if manifest else {}

        completed: dict[int, "ShardResult"] = {}
        checksums: dict[str, str] = {}
        for path in sorted(directory.glob("shard-*.json")):
            digest = _sha256(path)
            expected = known.get(path.name)
            if expected is not None and digest != expected:
                # Listed file failing its integrity check. Keep the
                # recorded checksum in the healed manifest so the
                # damaged file stays quarantined on the next load
                # instead of sneaking back in as "unlisted".
                checksums[path.name] = expected
                continue
            result = self._load_shard_file(path)
            if result is None:
                continue  # unlisted file that does not parse
            completed[result.index] = result
            checksums[path.name] = digest
        if completed and checksums != known:
            # Heal the manifest so the next reader sees every
            # recovered shard listed with a current checksum.
            self._write_manifest(checksums)
        return completed

    def clear(self) -> None:
        """Delete this campaign's checkpoint files (manifest included).

        Only the namespaced campaign directory — plus any pre-1.3
        root-level files carrying this campaign's fingerprint, which
        would otherwise be re-adopted by a later resume — is touched;
        other campaigns sharing the checkpoint root are left intact.
        """
        # Route legacy files through the migration first so clearing
        # a campaign also retires its pre-1.3 layout.
        self._adopt_legacy_layout()
        directory = self.campaign_directory
        if not directory.exists():
            return
        for pattern in ("shard-*.json", MANIFEST_NAME, "*.tmp-*"):
            for path in directory.glob(pattern):
                path.unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:
            pass  # unexpected extra files: leave them alone
