"""Merging shard results back into campaign results.

The sequential campaign visits cells in one canonical order (ISPs in
the order given, states in scenario order, CBGs sorted; Q3 candidate
blocks sorted). Shards complete in arbitrary order, so the merge walks
that same canonical order and pulls each cell's record stream from
whichever shard owns it — reproducing the sequential log byte for
byte. Sample plans and CBG totals are not shipped from workers; they
are recomputed here, which is cheap and deterministic in the world
seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bqt.logbook import QueryLog
from repro.core.collection import (
    CollectionResult,
    Q3Collection,
    q3_block_candidates,
)
from repro.core.sampling import SamplingPolicy, plan_cbg_sample
from repro.runtime.shards import (
    DEFAULT_ISPS,
    Q12Cell,
    ShardSpec,
    enumerate_q12_cells,
)
from repro.synth.world import World

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.executor import ShardResult

__all__ = ["merge_shard_results"]


def merge_shard_results(
    world: World,
    specs: list[ShardSpec],
    completed: dict[int, "ShardResult"],
    policy: SamplingPolicy | None = None,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
) -> tuple[CollectionResult, Q3Collection]:
    """Reassemble shard results in canonical campaign order."""
    missing = sorted(spec.index for spec in specs
                     if spec.index not in completed)
    if missing:
        raise ValueError(f"cannot merge: shards {missing} not completed")

    policy = policy or SamplingPolicy()
    owner_q12: dict[Q12Cell, int] = {}
    owner_q3: dict[str, int] = {}
    for spec in specs:
        for cell in spec.q12_cells:
            owner_q12[cell] = spec.index
        for block in spec.q3_blocks:
            owner_q3[block] = spec.index

    result = CollectionResult(log=QueryLog())
    grouped: dict[tuple[str, str], dict] = {}
    for cell in enumerate_q12_cells(world, isps=isps, states=states):
        shard = completed[owner_q12[cell]]
        records = shard.q12_records[cell]
        key = (cell.isp_id, cell.state)
        if key not in grouped:
            grouped[key] = world.caf_addresses_by_cbg(*key)
        plan = plan_cbg_sample(cell.cbg, grouped[key][cell.cbg], policy,
                               seed=world.config.seed)
        result.plans[(cell.isp_id, cell.cbg)] = plan
        result.cbg_totals[(cell.isp_id, cell.cbg)] = plan.population_size
        result.log.extend(records)

    q3 = Q3Collection(log=QueryLog())
    analyzed: list[str] = []
    for block_geoid in q3_block_candidates(world, states=q3_states):
        outcome = completed[owner_q3[block_geoid]].q3_outcomes[block_geoid]
        if outcome is None:
            continue
        analyzed.append(block_geoid)
        q3.incumbents[block_geoid] = outcome.incumbent_isp_id
        q3.log.extend(outcome.records)
        q3.modes.update(outcome.modes)
    q3.analyzed_blocks = tuple(analyzed)
    return result, q3
