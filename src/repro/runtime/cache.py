"""Content-addressed audit result cache.

Twenty-odd benchmark and example scripts each call
``ExperimentContext.at_scale(...)`` and rebuild the same audit from
scratch. The cache keys a completed :class:`~repro.core.pipeline
.AuditReport` by the content digest of everything that determines it —
the scenario (seed included), the sampling policy, and the ISP set —
so the second script at a given scale loads the first one's audit
instead of recomputing it.

Entries are stored as ``<digest>.pkl`` (the pickled report) plus a
``<digest>.json`` sidecar with the scenario parameters and headline
numbers for human inspection. Pickle implies the usual trust caveat:
only point ``cache_dir`` (or ``REPRO_CACHE_DIR``) at directories you
write yourself.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.sampling import SamplingPolicy
from repro.synth.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import AuditReport

__all__ = ["AuditCache", "audit_digest", "cache_dir_from_environment"]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
# Bump when a change anywhere in the pipeline invalidates old entries.
CACHE_FORMAT_VERSION = 1


def audit_digest(
    scenario: ScenarioConfig,
    policy: SamplingPolicy | None,
    isps: tuple[str, ...],
    use_urban_survey: bool = True,
) -> str:
    """Content address of one audit: every input that determines it —
    scenario, policy, ISP set, and the urban-survey toggle."""
    policy = policy or SamplingPolicy()
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "scenario": asdict(scenario),
        "policy": asdict(policy),
        "isps": sorted(isps),
        "use_urban_survey": use_urban_survey,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cache_dir_from_environment() -> str | None:
    """The cache directory named by ``REPRO_CACHE_DIR`` (if any)."""
    value = os.environ.get(CACHE_ENV_VAR, "").strip()
    return value or None


class AuditCache:
    """A directory of content-addressed audit reports."""

    def __init__(self, directory: str | Path):
        self._directory = Path(directory)

    @property
    def directory(self) -> Path:
        """The cache's root directory."""
        return self._directory

    def path_for(self, digest: str) -> Path:
        """Path of the pickled report for one digest."""
        return self._directory / f"{digest}.pkl"

    def get(self, digest: str) -> "AuditReport | None":
        """Load the cached report for a digest (None on miss).

        A corrupted entry (e.g. from a writer killed mid-publish on a
        filesystem without atomic rename) counts as a miss, not a
        crash — the caller recomputes and overwrites it.
        """
        path = self.path_for(digest)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            return None

    def put(self, digest: str, report: "AuditReport") -> Path:
        """Store a report under its digest; returns the pickle path."""
        self._directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        # Per-process temp name: concurrent scripts warming the same
        # cold cache must not interleave writes into one temp file.
        tmp = path.with_suffix(f".pkl.tmp-{os.getpid()}")
        with tmp.open("wb") as handle:
            pickle.dump(report, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic publish: readers never see half a pickle
        sidecar = {
            "digest": digest,
            "scenario": asdict(report.world.config),
            "headline": report.headline(),
            "q12_records": len(report.collection.log),
            "q3_records": len(report.q3_collection.log),
        }
        path.with_suffix(".json").write_text(
            json.dumps(sidecar, indent=2, sort_keys=True), encoding="utf-8")
        return path

    def entries(self) -> list[str]:
        """Digests currently stored, sorted."""
        if not self._directory.exists():
            return []
        return sorted(p.stem for p in self._directory.glob("*.pkl"))
