"""Content-addressed result cache: audits, and the worlds under them.

Twenty-odd benchmark and example scripts each call
``ExperimentContext.at_scale(...)`` and rebuild the same audit from
scratch. The cache keys a completed :class:`~repro.core.pipeline
.AuditReport` by the content digest of everything that determines it —
the scenario (seed included), the sampling policy, and the ISP set —
so the second script at a given scale loads the first one's audit
instead of recomputing it.

The *world* is cached separately, under the digest of the scenario
alone (:func:`world_digest`, entries in a ``worlds/`` subdirectory).
A policy sweep — same scenario, different sampling policies — misses
the audit cache on every variant but shares one cached world build,
which is the expensive half of a small audit.

The cache is size-bounded: give the constructor ``max_bytes`` or set
``REPRO_CACHE_MAX_BYTES`` and, after each store, the least-recently-
*used* entries (hits refresh an entry's clock) are evicted until the
directory fits. Entries are stored as ``<digest>.pkl`` plus a
``<digest>.json`` sidecar with headline numbers for human inspection.
Pickle implies the usual trust caveat: only point ``cache_dir`` (or
``REPRO_CACHE_DIR``) at directories you write yourself.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.sampling import SamplingPolicy
from repro.obs.metrics import REGISTRY as _METRICS
from repro.runtime.atomicio import (atomic_write_stream, atomic_write_text,
                                    sweep_stale_tmp_files)
from repro.synth.scenario import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import AuditReport
    from repro.synth.world import World

__all__ = [
    "AuditCache",
    "audit_digest",
    "content_digest",
    "world_digest",
    "cache_dir_from_environment",
    "cache_max_bytes_from_environment",
]

CACHE_ENV_VAR = "REPRO_CACHE_DIR"
CACHE_MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"
# Bump when a change anywhere in the pipeline invalidates old entries.
CACHE_FORMAT_VERSION = 1

_WORLDS_SUBDIR = "worlds"
# ImportError covers entries pickled by an older code version whose
# classes have since moved — stale, so a miss, not a crash.
_PICKLE_LOAD_ERRORS = (pickle.UnpicklingError, EOFError, AttributeError,
                       ImportError, OSError)


def content_digest(payload: dict) -> str:
    """SHA-256 of a payload's canonical JSON form.

    The one fingerprinting idiom every store shares (audit cache,
    checkpoints, panel store, autotune plans, per-cell wave digests):
    sorted keys, no whitespace, UTF-8. Canonicalization must never
    drift between stores — a digest written by one and compared by
    another would silently stop matching — so it lives only here.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def audit_digest(
    scenario: ScenarioConfig,
    policy: SamplingPolicy | None,
    isps: tuple[str, ...],
    use_urban_survey: bool = True,
    engine_config=None,
) -> str:
    """Content address of one audit: every input that determines it —
    scenario, policy, ISP set, and the urban-survey toggle.

    ``engine_config`` participates only when it differs from the
    default :class:`~repro.bqt.engine.EngineConfig` — an omitted or
    default config hashes exactly as before, preserving every digest
    already in a cache. A non-default config (fewer retries, pacing)
    gets its own address: retry policy changes the records, and a
    paced rehearsal that hit the cache would never actually pace.
    """
    from repro.bqt.engine import EngineConfig

    policy = policy or SamplingPolicy()
    payload = {
        "format": CACHE_FORMAT_VERSION,
        "scenario": asdict(scenario),
        "policy": asdict(policy),
        "isps": sorted(isps),
        "use_urban_survey": use_urban_survey,
    }
    if engine_config is not None and engine_config != EngineConfig():
        payload["engine_config"] = asdict(engine_config)
    return content_digest(payload)


def world_digest(scenario: ScenarioConfig) -> str:
    """Content address of one world build: the scenario alone.

    Deliberately independent of sampling policy and ISP set — the
    world is fully determined by the scenario's seed and shape, which
    is what lets audits with different policies share one build.
    """
    return content_digest({
        "format": CACHE_FORMAT_VERSION,
        "scenario": asdict(scenario),
    })


def cache_dir_from_environment() -> str | None:
    """The cache directory named by ``REPRO_CACHE_DIR`` (if any)."""
    value = os.environ.get(CACHE_ENV_VAR, "").strip()
    return value or None


def cache_max_bytes_from_environment() -> int | None:
    """The eviction bound named by ``REPRO_CACHE_MAX_BYTES`` (if any)."""
    value = os.environ.get(CACHE_MAX_BYTES_ENV_VAR, "").strip()
    if not value:
        return None
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(
            f"{CACHE_MAX_BYTES_ENV_VAR} must be an integer byte count, "
            f"got {value!r}") from None
    if parsed <= 0:
        raise ValueError(f"{CACHE_MAX_BYTES_ENV_VAR} must be positive")
    return parsed


class AuditCache:
    """A directory of content-addressed audit reports and world builds.

    ``max_bytes`` (default: ``REPRO_CACHE_MAX_BYTES``) bounds the
    total size of pickles and sidecars; stores evict least-recently-
    used entries — audit or world, whichever is coldest — to fit.
    """

    def __init__(self, directory: str | Path, max_bytes: int | None = None):
        self._directory = Path(directory)
        self._max_bytes = (max_bytes if max_bytes is not None
                           else cache_max_bytes_from_environment())
        if self._max_bytes is not None and self._max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        # Sidecar telemetry only — counts never touch cached bytes.
        self._metric_hits = _METRICS.counter("audit_cache_hits_total")
        self._metric_misses = _METRICS.counter("audit_cache_misses_total")
        self._metric_evictions = _METRICS.counter(
            "audit_cache_evictions_total")

    @property
    def directory(self) -> Path:
        """The cache's root directory."""
        return self._directory

    @property
    def max_bytes(self) -> int | None:
        """The eviction bound (None = unbounded)."""
        return self._max_bytes

    def path_for(self, digest: str) -> Path:
        """Path of the pickled report for one digest."""
        return self._directory / f"{digest}.pkl"

    def world_path_for(self, digest: str) -> Path:
        """Path of the pickled world for one digest."""
        return self._directory / _WORLDS_SUBDIR / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def get(self, digest: str) -> "AuditReport | None":
        """Load the cached report for a digest (None on miss).

        A corrupted entry (e.g. from a writer killed mid-publish on a
        filesystem without atomic rename) counts as a miss, not a
        crash — the caller recomputes and overwrites it.
        """
        report = self._load_pickle(self.path_for(digest))
        (self._metric_hits if report is not None
         else self._metric_misses).inc()
        return report

    def put(self, digest: str, report: "AuditReport") -> Path:
        """Store a report under its digest; returns the pickle path."""
        path = self._store_pickle(self.path_for(digest), report)
        sidecar = {
            "digest": digest,
            "scenario": asdict(report.world.config),
            "headline": report.headline(),
            "q12_records": len(report.collection.log),
            "q3_records": len(report.q3_collection.log),
        }
        atomic_write_text(
            path.with_suffix(".json"),
            json.dumps(sidecar, indent=2, sort_keys=True))
        self._evict(keep=path)
        return path

    def entries(self) -> list[str]:
        """Audit digests currently stored, sorted."""
        if not self._directory.exists():
            return []
        return sorted(p.stem for p in self._directory.glob("*.pkl"))

    # ------------------------------------------------------------------
    # worlds
    # ------------------------------------------------------------------
    def get_world(self, digest: str) -> "World | None":
        """Load the cached world for a scenario digest (None on miss)."""
        world = self._load_pickle(self.world_path_for(digest))
        (self._metric_hits if world is not None
         else self._metric_misses).inc()
        return world

    def put_world(self, digest: str, world: "World") -> Path:
        """Store a world build under its scenario digest."""
        path = self._store_pickle(self.world_path_for(digest), world)
        self._evict(keep=path)
        return path

    def world_entries(self) -> list[str]:
        """World digests currently stored, sorted."""
        worlds = self._directory / _WORLDS_SUBDIR
        if not worlds.exists():
            return []
        return sorted(p.stem for p in worlds.glob("*.pkl"))

    # ------------------------------------------------------------------
    # storage and eviction
    # ------------------------------------------------------------------
    def _load_pickle(self, path: Path):
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                loaded = pickle.load(handle)
        except _PICKLE_LOAD_ERRORS:
            return None
        # A hit refreshes the entry's LRU clock. The loaded object is
        # good regardless, so a refresh that cannot happen — entry
        # evicted by a concurrent process, or a read-only shared cache
        # (where eviction never runs either) — is fine to skip.
        try:
            os.utime(path)
        except OSError:
            pass
        return loaded

    def _store_pickle(self, path: Path, payload) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Shared atomic publish (per-process temp name + fsync +
        # rename): concurrent scripts warming the same cold cache
        # cannot interleave writes, and readers never see half a
        # pickle — even across a power failure. Streamed, so a
        # multi-megabyte world is never duplicated in memory.
        with atomic_write_stream(path) as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    def _entry_paths(self) -> list[Path]:
        pickles = list(self._directory.glob("*.pkl"))
        worlds = self._directory / _WORLDS_SUBDIR
        if worlds.exists():
            pickles.extend(worlds.glob("*.pkl"))
        return pickles

    @staticmethod
    def _stat_or_none(path: Path):
        # Concurrent processes evict from the same directory; any
        # entry may vanish between listing and stat'ing it.
        try:
            return path.stat()
        except FileNotFoundError:
            return None

    @classmethod
    def _entry_bytes(cls, path: Path) -> int:
        total = 0
        for part in (path, path.with_suffix(".json")):
            stat = cls._stat_or_none(part)
            if stat is not None:
                total += stat.st_size
        return total

    def total_bytes(self) -> int:
        """Total size of all entries (pickles plus sidecars)."""
        if not self._directory.exists():
            return 0
        return sum(self._entry_bytes(p) for p in self._entry_paths())

    def _sweep_stale_tmp_files(self) -> None:
        """Delete orphaned ``*.pkl.tmp-<pid>`` files from crashed puts.

        ``_evict`` only sees ``*.pkl``, so without the sweep a crash
        leak would never be reclaimed.
        """
        for directory in (self._directory, self._directory / _WORLDS_SUBDIR):
            sweep_stale_tmp_files(directory)

    def _evict(self, keep: Path) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        The just-written ``keep`` entry is never evicted: the bound
        governs what accumulates, not what the caller stored last.

        Sizes and mtimes come from one stat snapshot per entry, and an
        entry whose stat returns ``None`` — deleted by a concurrent
        evictor between the listing and the stat — is skipped
        entirely. Re-stat'ing (as this method once did, separately for
        the sort key, the running total, and the subtraction) let a
        racing-deleted path sort as mtime ``0.0``, get "evicted"
        first, and throw the byte accounting off against entries the
        other writer had already removed.
        """
        if self._max_bytes is None:
            return
        self._sweep_stale_tmp_files()
        total = 0
        evictable: list[tuple[float, Path, int]] = []
        for path in self._entry_paths():
            stat = self._stat_or_none(path)
            if stat is None:
                # Vanished under a concurrent writer's eviction: not
                # ours to count, and not ours to delete.
                continue
            size = stat.st_size
            sidecar = self._stat_or_none(path.with_suffix(".json"))
            if sidecar is not None:
                size += sidecar.st_size
            total += size
            if path != keep:
                evictable.append((stat.st_mtime, path, size))
        evictable.sort(key=lambda entry: entry[0])
        for _mtime, path, size in evictable:
            if total <= self._max_bytes:
                break
            path.unlink(missing_ok=True)
            path.with_suffix(".json").unlink(missing_ok=True)
            total -= size
            self._metric_evictions.inc()
