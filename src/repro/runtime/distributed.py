"""Distributed campaign execution: a coordinator leasing shards to workers.

The paper's measurement campaign ran as a fleet of remote BQT workers;
this backend (``RuntimeConfig(backend="distributed")``) gives the
reproduction that shape over the already process-shaped
``run_shard(scenario, spec)`` boundary. A *coordinator* owns the shard
partition and leases one shard at a time to each connected *worker*;
the worker runs it and streams the completed
:class:`~repro.runtime.executor.ShardResult` back as a checksummed
frame, which the coordinator checkpoints on arrival (via the
executor's ordinary ``on_complete`` path) before leasing the next
shard. A worker that vanishes mid-lease — socket EOF, a corrupt
frame, or a lease timeout — has its shard put back on the board and
re-leased to a surviving worker, so the merged output is the same
whether or not machines died along the way.

**Wire format.** Every message is a *frame*: a 4-byte big-endian
payload length, the 32-byte SHA-256 digest of the payload, then the
payload itself — canonical JSON (sorted keys, no whitespace). Shard
results reuse the exact JSON codecs of
:mod:`repro.runtime.checkpoint`, whose records round-trip floats by
shortest ``repr``; that is what makes the distributed merge
bit-identical to the serial path, enforced by the fifth column of
``tests/harness/equivalence.py``. The digest rejects torn or corrupted
frames (MABS-style batch verification: the receiver checks integrity
before acting), turning transport damage into a lease reassignment
instead of silent data corruption.

**Transports.** The protocol functions (:func:`read_frame` /
:func:`write_frame` and the per-connection service loop) operate on
plain binary file objects, so any byte stream works. The reference
transport shipped here — used by the equivalence and chaos tests —
is local subprocess workers (``repro worker --connect <address>``)
over a Unix-domain socket, with TCP ``host:port`` addresses also
accepted so workers can run on other machines.

**Autotuning.** :func:`autotune_runtime_config` is the
coordinator-side sizing step: run one pilot shard serially, extrapolate
its query log to the whole campaign, and ask
:func:`repro.bqt.scheduler.plan_to_target` for the smallest
``(workers, max_inflight)`` fleet predicted to meet a target
wall-clock; the CLI exposes it as ``caf-audit run --target-seconds``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import BinaryIO, Callable

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP, SECONDS_PER_DAY
from repro.bqt.engine import EngineConfig
from repro.bqt.logbook import QueryLog
from repro.bqt.scheduler import plan_to_target
from repro.core.sampling import SamplingPolicy
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import (BUFFER as _TRACE_BUFFER, adopt_trace_context,
                             current_trace_context, drain_spans,
                             ingest_spans, span, tracing_enabled)
from repro.runtime.checkpoint import _shard_from_json, _shard_to_json
from repro.runtime.shards import (
    DEFAULT_ISPS,
    Q12Cell,
    ShardSpec,
    plan_shards,
)
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World

__all__ = [
    "AutotunePlan",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "FrameError",
    "MISSED_HEARTBEAT_LIMIT",
    "autotune_runtime_config",
    "read_frame",
    "run_shards_distributed",
    "run_worker",
    "write_frame",
]

PROTOCOL_VERSION = 1

# A lease that produced no frame within this window is presumed lost.
DEFAULT_LEASE_TIMEOUT = 120.0

# Workers beat this often while computing a lease, so the coordinator
# can tell "still working" from "silently wedged" *inside* a lease
# instead of only at frame boundaries.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

# Consecutive missed beats before a silent worker's shard is requeued.
# The resulting window (interval x this) must stay well under the
# lease timeout, or heartbeats would add nothing over the old
# frame-boundary liveness.
MISSED_HEARTBEAT_LIMIT = 3

# How long the coordinator's accept loop sleeps between liveness checks.
_ACCEPT_POLL_SECONDS = 0.2

_LENGTH = struct.Struct(">I")
_DIGEST_BYTES = 32

# The abrupt-death exit code --die-after workers use (chaos testing);
# distinct from clean exits so tests can assert the death was real.
WORKER_DEATH_EXIT_CODE = 70


# ----------------------------------------------------------------------
# Frames: length-prefixed, SHA-256-verified JSON messages
# ----------------------------------------------------------------------

class FrameError(RuntimeError):
    """A frame arrived damaged (checksum mismatch or malformed JSON)."""


def _read_exact(stream: BinaryIO, size: int) -> bytes:
    # bytearray append is amortized O(1); bytes concatenation would be
    # quadratic over a multi-megabyte shard-result frame.
    buffer = bytearray()
    while len(buffer) < size:
        chunk = stream.read(size - len(buffer))
        if not chunk:
            raise EOFError(
                f"stream closed {size - len(buffer)} bytes short of a frame")
        buffer += chunk
    return bytes(buffer)


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Serialize one message as a checksummed frame and flush it."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    stream.write(_LENGTH.pack(len(payload))
                 + hashlib.sha256(payload).digest()
                 + payload)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict:
    """Read one frame; raises :class:`FrameError` if it arrived damaged
    and :class:`EOFError` if the stream ended mid-frame."""
    (length,) = _LENGTH.unpack(_read_exact(stream, _LENGTH.size))
    digest = _read_exact(stream, _DIGEST_BYTES)
    payload = _read_exact(stream, length)
    if hashlib.sha256(payload).digest() != digest:
        raise FrameError("frame payload does not match its SHA-256 digest")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise FrameError("frame payload must be a JSON object")
    return message


# ----------------------------------------------------------------------
# Message codecs (scenario/spec/policy travel as JSON, exactly)
# ----------------------------------------------------------------------

def _scenario_to_json(scenario) -> dict:
    """Inverse of :func:`_scenario_from_json`.

    ``asdict`` recurses through ``WaveScenario.base`` / ``.model``
    exactly the way the decoder rebuilds them; tuples become JSON
    arrays, which the decoder re-tuples.
    """
    return asdict(scenario)


def _scenario_from_json(data: dict):
    if "base" in data:
        # A longitudinal wave recipe: base scenario + churn model +
        # horizon (repro.synth.churn.WaveScenario). Workers realize it
        # instead of building the base world.
        from repro.synth.churn import ChurnModel, WaveScenario

        return WaveScenario(
            base=_scenario_from_json(data["base"]),
            years=data["years"],
            model=ChurnModel(**data["model"]),
        )
    data = dict(data)
    for key in ("states", "q3_states", "non_caf_fraction_range"):
        data[key] = tuple(data[key])
    return ScenarioConfig(**data)


def _spec_to_json(spec: ShardSpec) -> dict:
    return {
        "index": spec.index,
        "count": spec.count,
        "q12_cells": [[c.isp_id, c.state, c.cbg] for c in spec.q12_cells],
        "q3_blocks": list(spec.q3_blocks),
    }


def _spec_from_json(data: dict) -> ShardSpec:
    return ShardSpec(
        index=data["index"],
        count=data["count"],
        q12_cells=tuple(Q12Cell(isp_id=isp, state=state, cbg=cbg)
                        for isp, state, cbg in data["q12_cells"]),
        q3_blocks=tuple(data["q3_blocks"]),
    )


def _lease_message(
    scenario,
    spec: ShardSpec,
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    use_async: bool,
    max_inflight: int,
    per_isp_cap: int,
    heartbeat_interval: float | None = None,
    trace_context: dict | None = None,
) -> dict:
    return {
        "type": "lease",
        "protocol": PROTOCOL_VERSION,
        "scenario": _scenario_to_json(scenario),
        "spec": _spec_to_json(spec),
        "policy": None if policy is None else asdict(policy),
        "engine_config": (None if engine_config is None
                          else asdict(engine_config)),
        "max_replacements": max_replacements,
        "use_async": use_async,
        "max_inflight": max_inflight,
        "per_isp_cap": per_isp_cap,
        # None asks the worker not to beat (pre-heartbeat coordinators
        # simply omit the key, which decodes the same way).
        "heartbeat_interval": heartbeat_interval,
        # Versioned span-stitching context (repro.obs.trace); None when
        # tracing is off, and pre-obs coordinators simply omit the key
        # — either decodes the same way on any worker.
        "trace_context": trace_context,
    }


def _execute_lease(message: dict) -> dict:
    """Run one leased shard and build its result frame (worker side)."""
    from repro.runtime.executor import run_shard

    if tracing_enabled():
        # Join (or, for an old coordinator's context-free lease, leave)
        # the coordinator's trace so this shard's spans stitch under it.
        adopt_trace_context(message.get("trace_context"))
    policy = message["policy"]
    engine_config = message["engine_config"]
    result = run_shard(
        _scenario_from_json(message["scenario"]),
        _spec_from_json(message["spec"]),
        policy=None if policy is None else SamplingPolicy(**policy),
        engine_config=(None if engine_config is None
                       else EngineConfig(**engine_config)),
        max_replacements=message["max_replacements"],
        use_async=message["use_async"],
        max_inflight=message["max_inflight"],
        per_isp_cap=message["per_isp_cap"],
    )
    frame = {
        "type": "result",
        "index": result.index,
        "shard": _shard_to_json(result),
        # Politeness watermarks are diagnostic, not checkpointed — but
        # the coordinator's equivalence evidence needs them, so they
        # ride next to the shard payload.
        "politeness": result.politeness,
        # Metric deltas since the previous result frame; merged into
        # the coordinator's registry, never into the shard payload.
        "metrics": _METRICS.drain(),
    }
    if tracing_enabled():
        # Spans ride beside the shard payload the same way politeness
        # does: the coordinator ingests them into its trace buffer and
        # the checkpointed `shard` bytes stay untouched.
        frame["spans"] = drain_spans()
    return frame


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------

def _connect(address: str) -> socket.socket:
    """Connect to a coordinator address.

    An address containing a path separator or no colon at all is a
    Unix-domain socket path (the reference local transport); anything
    else is TCP ``host:port``. A colon-bearing socket *filename* must
    therefore be spelled with a separator (``./coord:1.sock``).
    """
    if os.sep in address or ":" not in address:
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(address)
        return sock
    host, _, port = address.rpartition(":")
    if not host:
        raise ValueError(f"worker address must be HOST:PORT or a socket "
                         f"path, got {address!r}")
    return socket.create_connection((host, int(port)))


def _execute_lease_with_heartbeats(stream: BinaryIO, message: dict) -> None:
    """Run one lease, beating while the shard computes.

    A daemon thread writes a heartbeat frame every
    ``heartbeat_interval`` seconds until the result is ready; the
    write lock keeps beat and result frames from interleaving on the
    stream. A worker that wedges (or is SIGSTOPped) stops beating —
    which is the whole point: silence, not just EOF, now reads as
    death on the coordinator side.
    """
    interval = message.get("heartbeat_interval")
    if not interval:
        write_frame(stream, _execute_lease(message))
        return
    index = message["spec"]["index"]
    done = threading.Event()
    write_lock = threading.Lock()

    def beat() -> None:
        while not done.wait(interval):
            try:
                with write_lock:
                    write_frame(stream, {"type": "heartbeat",
                                         "index": index})
            except OSError:
                return  # coordinator hung up; the result write will see it

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    try:
        result = _execute_lease(message)
    finally:
        done.set()
        beater.join()
    with write_lock:
        write_frame(stream, result)


def run_worker(address: str, die_after: int | None = None,
               wedge_after: int | None = None) -> int:
    """One worker process: connect, run leases until told to stop.

    ``die_after`` is the chaos-testing hook: after completing that many
    shards, the worker dies *abruptly* on its next lease — no goodbye
    frame, just ``os._exit`` — the way a preempted VM or OOM-killed
    container dies, so the coordinator's reassignment path is exercised
    for real. ``wedge_after`` is its quieter sibling: the worker stays
    *alive* but goes silent on the lease (no heartbeats, no result),
    the way a deadlocked or swapping process hangs — exercising the
    missed-heartbeat requeue instead of the EOF path.
    """
    sock = _connect(address)
    stream = sock.makefile("rwb")
    completed = 0
    if tracing_enabled():
        # Label this process's spans so the stitched tree shows which
        # worker ran each shard. The trace id itself arrives with the
        # first lease's trace_context.
        _TRACE_BUFFER.site = f"worker-{os.getpid()}"
    try:
        write_frame(stream, {"type": "hello",
                             "protocol": PROTOCOL_VERSION,
                             "pid": os.getpid(),
                             # Capability flag: this worker beats while
                             # computing when the lease asks it to, so
                             # the coordinator may hold it to the
                             # missed-heartbeat window.
                             "heartbeats": True})
        while True:
            try:
                message = read_frame(stream)
            except EOFError:
                return 0  # coordinator is gone; nothing left to do
            kind = message.get("type")
            if kind == "shutdown":
                return 0
            if kind != "lease":
                raise FrameError(f"unexpected message type {kind!r}")
            # Pre-versioning coordinators omit the key; a *different*
            # version is a hard refusal — mixed codecs corrupt shards.
            peer = message.get("protocol", PROTOCOL_VERSION)
            if peer != PROTOCOL_VERSION:
                raise FrameError(
                    f"protocol skew: coordinator speaks {peer!r}, "
                    f"this worker speaks {PROTOCOL_VERSION!r}")
            if die_after is not None and completed >= die_after:
                os._exit(WORKER_DEATH_EXIT_CODE)
            if wedge_after is not None and completed >= wedge_after:
                while True:  # wedged: alive but silent
                    time.sleep(3600)
            _execute_lease_with_heartbeats(stream, message)
            completed += 1
    finally:
        stream.close()
        sock.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

class _LeaseBoard:
    """Thread-safe shard board: pending → leased → completed.

    ``deliver`` runs the caller's ``on_complete`` under the board lock,
    which serializes checkpoint writes and progress callbacks exactly
    like the single-threaded backends, and makes duplicate delivery
    (a reassigned shard finishing twice) a no-op. An exception from
    ``on_complete`` (a failed checkpoint write, say) is captured on
    :attr:`error` and ends the campaign — the coordinator re-raises it
    — because the serial and process backends fail loudly there too.
    """

    def __init__(self, specs: list[ShardSpec],
                 on_complete: Callable) -> None:
        self._pending: deque[ShardSpec] = deque(specs)
        self._leased: dict[int, ShardSpec] = {}
        self._completed: set[int] = set()
        self._on_complete = on_complete
        self._lock = threading.Lock()
        self.done = threading.Event()
        self.error: BaseException | None = None
        if not specs:
            self.done.set()

    def checkout(self) -> ShardSpec | None:
        with self._lock:
            if self.error is not None or not self._pending:
                return None
            spec = self._pending.popleft()
            self._leased[spec.index] = spec
            return spec

    def requeue(self, spec: ShardSpec) -> None:
        with self._lock:
            self._leased.pop(spec.index, None)
            if spec.index not in self._completed:
                # Front of the queue: a lost shard is the oldest work.
                self._pending.appendleft(spec)

    def deliver(self, spec: ShardSpec, result) -> bool:
        with self._lock:
            self._leased.pop(spec.index, None)
            if spec.index in self._completed:
                return False
            self._completed.add(spec.index)
            try:
                self._on_complete(result)
            except BaseException as error:  # noqa: BLE001 — re-raised
                self.error = error
                self.done.set()
                return False
            if not self._pending and not self._leased:
                self.done.set()
            return True

    def outstanding(self) -> bool:
        with self._lock:
            return bool(self._pending or self._leased)


def _serve_connection(
    conn: socket.socket,
    board: _LeaseBoard,
    make_lease: Callable[[ShardSpec], dict],
    lease_timeout: float,
    on_abandon: Callable[[int], None] = lambda pid: None,
    heartbeat_interval: float | None = None,
    on_reassign: Callable[[ShardSpec], None] = lambda spec: None,
) -> None:
    """Drive one worker connection: lease, await result, repeat.

    Any failure — damaged frame, timeout, EOF, wrong shard index —
    requeues the outstanding lease and abandons the connection; the
    surviving fleet (or a respawned worker) picks the shard back up.
    ``on_abandon`` then receives the worker's hello pid so the
    transport can put the process down: a wedged-but-alive worker
    holding a dead connection must not count as fleet capacity, or
    the coordinator's liveness watch can never respawn around it.

    With ``heartbeat_interval`` set *and* the worker's hello frame
    advertising ``"heartbeats": true``, the lease asks the worker to
    beat while it computes, and the per-read timeout shrinks to the
    missed-heartbeat window (``interval x MISSED_HEARTBEAT_LIMIT``,
    never above the lease timeout): a worker that goes *silent*
    mid-lease is requeued within the window instead of holding its
    shard for the full lease timeout. The capability gate keeps skewed
    fleets safe — a pre-heartbeat worker (same wire protocol, no
    beats) computing a shard longer than the window would otherwise be
    abandoned while healthy, so it keeps the full lease timeout per
    read. The lease timeout stays the outer bound either way — a
    worker that keeps beating but never delivers is still cut off
    there.
    """
    stream = conn.makefile("rwb")
    spec: ShardSpec | None = None
    worker_pid: int | None = None
    try:
        conn.settimeout(lease_timeout)
        try:
            hello = read_frame(stream)
        except (FrameError, EOFError, OSError):
            return
        if hello.get("type") != "hello":
            return
        if hello.get("protocol", PROTOCOL_VERSION) != PROTOCOL_VERSION:
            return  # version-skewed worker; its shards stay leasable
        if isinstance(hello.get("pid"), int):
            worker_pid = hello["pid"]
        if heartbeat_interval and hello.get("heartbeats") is True:
            conn.settimeout(min(lease_timeout,
                                heartbeat_interval
                                * MISSED_HEARTBEAT_LIMIT))
        while True:
            spec = board.checkout()
            if spec is None:
                # Nothing leasable right now. If another worker's lease
                # later fails, the coordinator's liveness loop respawns
                # capacity, so it is safe to let this worker go.
                try:
                    write_frame(stream, {"type": "shutdown"})
                except OSError:
                    pass
                return
            try:
                write_frame(stream, make_lease(spec))
                deadline = time.monotonic() + lease_timeout
                while True:
                    message = read_frame(stream)
                    if message.get("type") != "heartbeat":
                        break
                    if time.monotonic() >= deadline:
                        # Beating but never delivering: the lease
                        # timeout is still the outer bound.
                        return
            except (FrameError, EOFError, OSError):
                return  # finally-block requeues
            if (message.get("type") != "result"
                    or message.get("index") != spec.index):
                return
            try:
                result = _shard_from_json(message["shard"])
                result.politeness = {
                    isp: int(peak) for isp, peak
                    in message.get("politeness", {}).items()}
            except (KeyError, TypeError, ValueError):
                # Checksummed but structurally wrong — a worker running
                # skewed code. Treat like any damaged frame: requeue
                # (via finally) and abandon this worker.
                return
            # Sidecar telemetry riding the frame: absorbed before the
            # shard is delivered, never written into checkpoints.
            # Pre-obs workers omit both keys and decode the same way.
            _METRICS.merge(message.get("metrics"))
            ingest_spans(message.get("spans") or [])
            board.deliver(spec, result)
            spec = None
    finally:
        if spec is not None:
            board.requeue(spec)
            on_reassign(spec)
            if worker_pid is not None:
                on_abandon(worker_pid)
        try:
            stream.close()
        except OSError:
            pass
        conn.close()


def _worker_environment() -> dict[str, str]:
    """Environment for spawned workers: the coordinator's, with this
    source tree importable whether or not PYTHONPATH was exported."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (f"{src_root}{os.pathsep}{existing}"
                             if existing else src_root)
    return env


def run_shards_distributed(
    world: World,
    pending: list[ShardSpec],
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    config,
    per_isp_cap: int,
    on_complete: Callable,
    lease_timeout: float | None = None,
    worker_command: tuple[str, ...] | None = None,
    first_worker_extra_args: tuple[str, ...] = (),
    max_respawns: int | None = None,
    scenario=None,
    heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
) -> None:
    """Run shards on a leased worker fleet (the coordinator side).

    Spawns ``config.effective_workers`` reference-transport workers
    (``repro worker`` subprocesses on a Unix-domain socket), serves
    each connection on its own thread, and keeps a liveness watch: if
    every worker is gone while shards remain, replacements are spawned
    — up to ``max_respawns`` (default: fleet size + 2) — and past
    that the campaign fails loudly rather than hanging.

    ``scenario`` is the world recipe leased to workers (default:
    ``world.config``; a :class:`~repro.synth.churn.WaveScenario` for
    evolved panel-wave worlds). ``first_worker_extra_args`` is the
    chaos hook the tests use to hand exactly one worker a
    ``--die-after`` / ``--wedge-after`` flag. ``heartbeat_interval``
    asks workers to beat that often inside each lease, so a silent
    worker's shard is requeued after the missed-heartbeat window
    (well under the lease timeout); ``None`` restores the old
    frame-boundary-only liveness.
    """
    specs = list(pending)
    if not specs:
        return
    if lease_timeout is None:
        lease_timeout = DEFAULT_LEASE_TIMEOUT
    if lease_timeout <= 0:
        raise ValueError("lease_timeout must be positive")
    if heartbeat_interval is not None and heartbeat_interval <= 0:
        raise ValueError("heartbeat_interval must be positive")
    workers = max(1, min(config.effective_workers, len(specs)))
    scenario = scenario if scenario is not None else world.config
    board = _LeaseBoard(specs, on_complete)

    # Span-stitching state. The dispatch-time context (the enclosing
    # campaign.dispatch / wave span) parents every first lease; when a
    # lease is abandoned the shard's parent becomes the lease.reassign
    # span recorded below, so the retried shard's worker spans hang off
    # the reassignment in the stitched tree.
    dispatch_context = current_trace_context()
    shard_parents: dict[int, str] = {}
    parents_lock = threading.Lock()
    reassignments = _METRICS.counter("lease_reassignments_total")
    leases_granted = _METRICS.counter("leases_granted_total")

    def make_lease(spec: ShardSpec) -> dict:
        trace_context = None
        if dispatch_context is not None:
            trace_context = dict(dispatch_context)
            with parents_lock:
                parent = shard_parents.get(spec.index)
            if parent is not None:
                trace_context["span_id"] = parent
        leases_granted.inc()
        return _lease_message(scenario, spec, policy, engine_config,
                              max_replacements, config.uses_async,
                              config.effective_max_inflight, per_isp_cap,
                              heartbeat_interval=heartbeat_interval,
                              trace_context=trace_context)

    def note_reassign(spec: ShardSpec) -> None:
        reassignments.inc()
        if dispatch_context is None or not tracing_enabled():
            return
        with parents_lock:
            parent = shard_parents.get(spec.index,
                                       dispatch_context["span_id"])
        # Runs on a connection thread, so the parent is explicit rather
        # than taken from the (empty) thread-local span stack.
        with span("lease.reassign", parent_id=parent,
                  shard=spec.index) as marker:
            pass
        with parents_lock:
            shard_parents[spec.index] = marker.span_id

    # Where the fleet meets: the default is a Unix socket in a private
    # temp directory; ``config.worker_address`` overrides it with a
    # caller-chosen Unix path or a TCP ``host:port`` (port 0 picks a
    # free port, resolved after bind so spawned workers get the real
    # one) for cross-host fleets or hosts without Unix sockets.
    worker_address = getattr(config, "worker_address", None)
    tmpdir = None
    tcp_endpoint = None
    if worker_address is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-dist-")
        address = os.path.join(tmpdir, "coordinator.sock")
        listener = socket.socket(socket.AF_UNIX)
    elif os.sep in worker_address or ":" not in worker_address:
        address = worker_address
        listener = socket.socket(socket.AF_UNIX)
    else:
        host, _, port_text = worker_address.rpartition(":")
        try:
            tcp_endpoint = (host, int(port_text))
        except ValueError:
            raise ValueError(
                f"worker_address {worker_address!r} has a non-numeric port")
        address = worker_address  # refined to the bound port below
        listener = socket.socket(socket.AF_INET)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    procs: list[subprocess.Popen] = []
    threads: list[threading.Thread] = []
    respawns_left = (workers + 2) if max_respawns is None else max_respawns

    def spawn(extra_args: tuple[str, ...] = ()) -> None:
        command = list(worker_command if worker_command is not None
                       else (sys.executable, "-m", "repro", "worker"))
        command += ["--connect", address, *extra_args]
        procs.append(subprocess.Popen(
            command, env=_worker_environment(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL))

    def abandon_worker(pid: int) -> None:
        # A worker whose connection was abandoned (timeout, damaged
        # frame) may be wedged rather than dead; kill it so the
        # liveness watch sees real fleet capacity, not a zombie.
        for proc in procs:
            if proc.pid == pid and proc.poll() is None:
                proc.kill()

    try:
        if tcp_endpoint is not None:
            listener.bind(tcp_endpoint)
            bound_port = listener.getsockname()[1]
            address = f"{tcp_endpoint[0] or '127.0.0.1'}:{bound_port}"
        else:
            listener.bind(address)
        listener.listen(workers * 2)
        listener.settimeout(_ACCEPT_POLL_SECONDS)
        spawn(tuple(first_worker_extra_args))
        for _ in range(workers - 1):
            spawn()
        while not board.done.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                conn = None
            if conn is not None:
                thread = threading.Thread(
                    target=_serve_connection,
                    args=(conn, board, make_lease, lease_timeout,
                          abandon_worker, heartbeat_interval,
                          note_reassign),
                    daemon=True)
                thread.start()
                threads.append(thread)
            threads = [t for t in threads if t.is_alive()]
            if (board.outstanding() and not threads
                    and all(p.poll() is not None for p in procs)):
                # Work remains but the whole fleet is dead and nothing
                # is mid-handshake: reassign onto fresh capacity.
                if respawns_left <= 0:
                    raise RuntimeError(
                        "distributed campaign stalled: every worker died "
                        "and the respawn budget is exhausted")
                respawns_left -= 1
                spawn()
        for thread in threads:
            thread.join(timeout=lease_timeout)
        if board.error is not None:
            # on_complete failed (checkpoint write, progress callback):
            # fail as loudly as the serial backend would have.
            raise board.error
    finally:
        listener.close()
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
        elif tcp_endpoint is None:
            # Caller-provided Unix path: remove the socket file, keep
            # the caller's directory.
            try:
                os.unlink(address)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Coordinator-side autotuning
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AutotunePlan:
    """The fleet the autotuner picked for a target wall-clock.

    ``predicted_seconds`` is the interleaved-utilization model's
    forecast for the *virtual* campaign wall clock (the quantity the
    paper's fleet arithmetic reasons about) under the chosen fleet; it
    exceeds ``target_seconds`` only when no fleet under the politeness
    cap can meet the target.
    """

    shards: int
    workers: int
    max_inflight: int
    predicted_seconds: float
    target_seconds: float
    pilot_shards: int
    pilot_query_seconds: float

    @property
    def meets_target(self) -> bool:
        """Whether the forecast makes the requested wall clock."""
        return self.predicted_seconds <= self.target_seconds

    def runtime_config(self, **overrides):
        """The distributed :class:`~repro.runtime.executor
        .RuntimeConfig` realizing this plan; ``overrides`` pass
        through (checkpoint/cache/resume flags, typically)."""
        from repro.runtime.executor import RuntimeConfig

        return RuntimeConfig(
            shards=self.shards,
            workers=self.workers,
            backend="distributed",
            # max_inflight 1 means sync workers; requesting an event
            # loop bounded to one session would only add overhead.
            max_inflight=self.max_inflight if self.max_inflight > 1 else None,
            **overrides,
        )

    def render(self) -> str:
        """One human-readable line for the CLI."""
        verdict = ("meets" if self.meets_target else
                   "politeness-bound above")
        return (f"autotuned fleet: {self.workers} workers x "
                f"{self.max_inflight} in-flight, {self.shards} shards — "
                f"predicted {self.predicted_seconds:.1f}s virtual "
                f"wall-clock ({verdict} the {self.target_seconds:.1f}s "
                f"target)")


def _autotune_plan_key(
    world: World,
    target_seconds: float,
    pilot_shards: int,
    shard_oversubscription: int,
    policy: SamplingPolicy | None,
    isps: tuple[str, ...],
    states: tuple[str, ...] | None,
    q3_states: tuple[str, ...] | None,
    max_replacements: int,
) -> str:
    """Content key of one autotune decision: world digest + target +
    every sizing input that shapes the pilot or the candidate fleet."""
    from repro.runtime.cache import content_digest, world_digest

    return content_digest({
        "world": world_digest(world.config),
        "target_seconds": target_seconds,
        "pilot_shards": pilot_shards,
        "shard_oversubscription": shard_oversubscription,
        "policy": None if policy is None else asdict(policy),
        "isps": list(isps),
        "states": None if states is None else list(states),
        "q3_states": None if q3_states is None else list(q3_states),
        "max_replacements": max_replacements,
    })[:16]


def _load_autotune_plan(path: Path) -> AutotunePlan | None:
    """Parse a persisted plan, or None when missing/damaged/stale."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    fields = {f.name for f in AutotunePlan.__dataclass_fields__.values()}
    if not isinstance(data, dict) or set(data) != fields:
        return None
    try:
        return AutotunePlan(**data)
    except (TypeError, ValueError):
        return None


def autotune_runtime_config(
    world: World,
    target_seconds: float,
    pilot_shards: int = 8,
    shard_oversubscription: int = 4,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
    plan_dir: str | Path | None = None,
) -> AutotunePlan:
    """Pick ``workers``/``max_inflight``/``shards`` for a wall-clock target.

    The coordinator-side sizing step: run *one* pilot shard (of a
    ``pilot_shards``-way partition) serially, extrapolate its query log
    to the full campaign by replication, and hand the result to
    :func:`repro.bqt.scheduler.plan_to_target`, which prices candidate
    fleets with the interleaved-utilization model under the politeness
    cap. Shards are oversubscribed ``shard_oversubscription``-fold over
    the worker count so the lease board can rebalance around slow or
    dead workers at useful granularity.

    ``plan_dir`` persists the decision: the plan is stored under a
    content key of (world digest, target, sizing inputs), and a later
    call with the same key returns the stored plan *without running
    the pilot shard* — so a ``--resume`` of a fully-checkpointed
    campaign (or any repeat run) no longer pays a serial pilot whose
    work the fleet then discards.
    """
    from repro.runtime.atomicio import atomic_write_text
    from repro.runtime.executor import run_shard

    if target_seconds <= 0:
        raise ValueError("target_seconds must be positive")
    if pilot_shards < 1:
        raise ValueError("pilot_shards must be positive")
    if shard_oversubscription < 1:
        raise ValueError("shard_oversubscription must be positive")
    plan_path: Path | None = None
    if plan_dir is not None:
        key = _autotune_plan_key(world, target_seconds, pilot_shards,
                                 shard_oversubscription, policy, isps,
                                 states, q3_states, max_replacements)
        plan_path = Path(plan_dir) / f"autotune-{key}.json"
        stored = _load_autotune_plan(plan_path)
        if stored is not None:
            return stored
    specs = plan_shards(world, pilot_shards, isps=isps, states=states,
                        q3_states=q3_states)
    pilot = next((spec for spec in specs if spec.num_units), None)
    if pilot is None:
        raise ValueError("campaign has no cells to autotune against")
    result = run_shard(world.config, pilot, policy=policy,
                       engine_config=engine_config,
                       max_replacements=max_replacements, world=world)
    pilot_log = QueryLog()
    for records in result.q12_records.values():
        pilot_log.extend(records)
    for outcome in result.q3_outcomes.values():
        if outcome is not None:
            pilot_log.extend(outcome.records)
    if not pilot_log.isps():
        raise ValueError("pilot shard produced no queries; the campaign "
                         "is too small to autotune")
    # Round-robin dealing balances shards to within one cell, so the
    # whole campaign looks like pilot_shards copies of the pilot.
    full_log = QueryLog()
    for _ in range(pilot_shards):
        full_log.extend(pilot_log)
    # Price candidates with the per-ISP concurrency a fleet of that
    # size actually achieves: the executor floor-divides the
    # politeness cap across workers, stranding part of the budget at
    # non-divisor counts (RuntimeConfig.per_shard_isp_cap_for).
    schedule = plan_to_target(
        full_log, target_seconds,
        cap_for_loops=lambda loops:
            max(1, MAX_POLITE_WORKERS_PER_ISP // loops) * loops)
    plan = AutotunePlan(
        shards=schedule.loops * shard_oversubscription,
        workers=schedule.loops,
        max_inflight=schedule.max_inflight,
        predicted_seconds=schedule.wall_clock_days * SECONDS_PER_DAY,
        target_seconds=target_seconds,
        pilot_shards=pilot_shards,
        pilot_query_seconds=pilot_log.total_virtual_seconds(),
    )
    if plan_path is not None:
        plan_path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(plan_path, json.dumps(asdict(plan), indent=2,
                                                sort_keys=True))
    return plan
