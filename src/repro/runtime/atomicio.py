"""Atomic publish-and-sweep primitives shared by the durable stores.

Both on-disk stores (:mod:`repro.runtime.checkpoint` and
:mod:`repro.runtime.cache`) need the same two guarantees, so the logic
lives once here:

* **atomic publish** — write to a per-process ``*.tmp-<pid>`` sibling,
  ``fsync`` it, then ``rename`` over the target (and best-effort
  ``fsync`` the directory), so a writer killed at any instruction —
  or a machine losing power — leaves either the old file or the new
  one, never a truncated hybrid;
* **stale-tmp sweep** — tmp files orphaned by crashed writers are
  reclaimed once they are old enough that no live writer can still
  own them (deleting a *young* tmp file would crash a concurrent
  writer's rename).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_json",
           "atomic_write_stream", "atomic_write_text",
           "sweep_stale_tmp_files"]

# Live writers publish within seconds; anything older is a crash leak.
STALE_TMP_SECONDS = 3600.0


def _fsync_directory(directory: Path) -> None:
    # Makes the rename itself durable. Best-effort: some filesystems
    # refuse to fsync a directory fd, and the data file is already
    # synced either way.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write_stream(path: Path):
    """Stream into a tmp file, then publish it atomically and durably.

    Yields the open binary handle; on clean exit the file is fsynced
    and renamed over ``path``. For large payloads (pickled worlds)
    this avoids materializing the whole serialization in memory.
    """
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with tmp.open("wb") as handle:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    _fsync_directory(path.parent)


def atomic_write_bytes(path: Path, payload: bytes) -> Path:
    """Publish ``payload`` at ``path`` atomically and durably."""
    with atomic_write_stream(path) as handle:
        handle.write(payload)
    return path


def atomic_write_text(path: Path, text: str) -> Path:
    """Publish UTF-8 ``text`` at ``path`` atomically and durably."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: Path, payload) -> Path:
    """Publish ``payload`` as canonical JSON (sorted keys, no
    whitespace) atomically and durably.

    The canonical form is the same one :func:`repro.runtime.cache
    .content_digest` hashes, so a document published here can be
    re-digested byte-for-byte by any reader.
    """
    return atomic_write_text(
        path, json.dumps(payload, sort_keys=True, separators=(",", ":")))


def sweep_stale_tmp_files(
    directory: Path,
    max_age_seconds: float = STALE_TMP_SECONDS,
) -> None:
    """Reclaim ``*.tmp-*`` files orphaned by crashed writers."""
    if not directory.exists():
        return
    cutoff = time.time() - max_age_seconds
    for tmp in directory.glob("*.tmp-*"):
        try:
            if tmp.stat().st_mtime < cutoff:
                tmp.unlink(missing_ok=True)
        except FileNotFoundError:
            pass
