"""The durable stores' common base: fingerprint-namespaced, checksum-heal.

Three on-disk stores share one survival story — the shard checkpoints
(:class:`~repro.runtime.checkpoint.CheckpointStore`), the panel wave
CAS (:class:`~repro.longitudinal.store.PanelStore`), and the service's
campaign journal (:class:`~repro.service.journal.Journal`). All of
them:

* live under a shared *root* directory, with each owner's files
  namespaced into a subdirectory named by a 16-hex prefix of its
  content **fingerprint**, so owners sharing a root can never clobber
  each other's work;
* treat every document as untrusted until it passes a checksum —
  parse failures, foreign fingerprints, and digest mismatches are
  *misses that recompute* (or, where leaving the file would block the
  recompute's republish, quarantined), never crashes or silent wrong
  data;
* publish through :mod:`repro.runtime.atomicio` and sweep its stale
  tmp files.

This base class holds the shared mechanics; the policy differences
(manifest-of-checksums vs per-document digests vs hash chains) stay in
the subclasses.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runtime.atomicio import sweep_stale_tmp_files

__all__ = ["FingerprintNamespacedStore"]


class FingerprintNamespacedStore:
    """A durable store owning one fingerprint's namespace under a root.

    ``directory`` is the shared root; this owner's files live in
    :attr:`namespace_directory`, a subdirectory named by a prefix of
    the fingerprint. Namespacing (rather than a fingerprint check that
    deletes on mismatch) means owners that share a root can never
    destroy each other's files.
    """

    # Enough hex digits that distinct fingerprints practically never
    # collide, short enough to keep paths readable.
    _NAMESPACE_DIGITS = 16

    def __init__(self, directory: str | Path, fingerprint: str):
        self._directory = Path(directory)
        self._fingerprint = fingerprint

    @property
    def directory(self) -> Path:
        """The store root (shared across fingerprints)."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The content fingerprint this store's files belong to."""
        return self._fingerprint

    @property
    def namespace_directory(self) -> Path:
        """This fingerprint's namespaced subdirectory under the root."""
        return self._directory / self._fingerprint[:self._NAMESPACE_DIGITS]

    # ------------------------------------------------------------------
    # shared damage-tolerant reads
    # ------------------------------------------------------------------

    @staticmethod
    def _read_json_document(path: Path) -> dict | None:
        """Parse one JSON document, or ``None`` on any damage.

        ``None`` covers the whole miss family every store treats the
        same way: missing file, unreadable file, torn/invalid JSON,
        and valid JSON that is not an object.
        """
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None

    def _owned_document(self, path: Path) -> dict | None:
        """A parsed document whose ``fingerprint`` field matches ours.

        A document carrying a *different* fingerprint is foreign data
        (another owner's file, or external tampering) — a miss, never
        deleted: the namespace scheme makes it not ours to judge.
        """
        document = self._read_json_document(path)
        if document is None:
            return None
        if document.get("fingerprint") != self._fingerprint:
            return None
        return document

    def sweep_tmp_files(self) -> None:
        """Reclaim stale atomic-write leftovers in the namespace."""
        sweep_stale_tmp_files(self.namespace_directory)
