"""Deterministic partitioning of a campaign into shards.

A campaign decomposes into independent *cells* (see
:mod:`repro.core.collection`): one (ISP, state, CBG) sample for Q1/Q2
and one census block for Q3. This module enumerates those cells in the
canonical order the sequential campaign visits them and deals them
round-robin onto ``shard_count`` shards.

Round-robin over the canonical order has two properties the runtime
relies on:

* **Stability** — for any shard count, the union of all shards is
  exactly the canonical cell list, each cell appearing once, so the
  merged result is independent of how many shards ran it.
* **Balance** — adjacent cells (which tend to be similar-sized: same
  state, neighbouring CBGs) land on different shards, so shard
  workloads stay within a cell of each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import CAF_STUDY_ISP_IDS as DEFAULT_ISPS
from repro.synth.world import World

__all__ = ["Q12Cell", "ShardSpec", "deal_shards", "enumerate_q12_cells",
           "plan_shards"]


@dataclass(frozen=True)
class Q12Cell:
    """Identity of one Q1/Q2 campaign cell."""

    isp_id: str
    state: str
    cbg: str


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the campaign.

    ``index``/``count`` identify the shard within its partition;
    ``q12_cells`` and ``q3_blocks`` list the cells it owns, in
    canonical (sequential-campaign) order.
    """

    index: int
    count: int
    q12_cells: tuple[Q12Cell, ...]
    q3_blocks: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("shard count must be positive")
        if not 0 <= self.index < self.count:
            raise ValueError("shard index out of range")

    @property
    def num_units(self) -> int:
        """Total work units (Q1/Q2 cells + Q3 blocks) in this shard."""
        return len(self.q12_cells) + len(self.q3_blocks)


def enumerate_q12_cells(
    world: World,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
) -> list[Q12Cell]:
    """All Q1/Q2 cells in the order the sequential campaign visits them."""
    states = states or world.config.states
    cells: list[Q12Cell] = []
    for isp_id in isps:
        for state in states:
            by_cbg = world.caf_addresses_by_cbg(isp_id, state)
            for cbg in sorted(by_cbg):
                cells.append(Q12Cell(isp_id=isp_id, state=state, cbg=cbg))
    return cells


def deal_shards(
    q12_cells: list[Q12Cell],
    q3_blocks: list[str],
    shard_count: int,
) -> list[ShardSpec]:
    """Deal cells round-robin onto ``shard_count`` shards.

    The one partitioning rule every planner shares — the full campaign
    (:func:`plan_shards`) and the longitudinal delta collector, whose
    checkpoint fingerprints bake in the shard layout.
    """
    if shard_count < 1:
        raise ValueError("shard count must be positive")
    q12_by_shard: list[list[Q12Cell]] = [[] for _ in range(shard_count)]
    q3_by_shard: list[list[str]] = [[] for _ in range(shard_count)]
    for position, cell in enumerate(q12_cells):
        q12_by_shard[position % shard_count].append(cell)
    for position, block in enumerate(q3_blocks):
        q3_by_shard[position % shard_count].append(block)
    return [
        ShardSpec(
            index=index,
            count=shard_count,
            q12_cells=tuple(q12_by_shard[index]),
            q3_blocks=tuple(q3_by_shard[index]),
        )
        for index in range(shard_count)
    ]


def plan_shards(
    world: World,
    shard_count: int,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
) -> list[ShardSpec]:
    """Partition the campaign into ``shard_count`` round-robin shards."""
    # Imported here: collection imports nothing from runtime, but keep
    # the module-level dependency surface of shards minimal.
    from repro.core.collection import q3_block_candidates

    if shard_count < 1:
        raise ValueError("shard count must be positive")
    return deal_shards(
        enumerate_q12_cells(world, isps=isps, states=states),
        q3_block_candidates(world, states=q3_states),
        shard_count,
    )
