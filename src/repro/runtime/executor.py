"""Sharded campaign execution.

:func:`execute_campaign` turns the audit's two collections into a
sharded job: plan the shards, run each shard's cells (in process, or on
a ``concurrent.futures.ProcessPoolExecutor``), checkpoint completed
shards, and merge the shard logs back into campaign results that are
bit-identical to the sequential loops in :mod:`repro.core.collection`.

Politeness is enforced the way the paper's fleet enforced it: a shard
drives at most one browser session per ISP at a time (its cells run
sequentially, grouped per ISP in canonical order), so the number of
concurrent sessions against any storefront is bounded by the number of
in-flight shards — which :class:`RuntimeConfig` clamps to
``MAX_POLITE_WORKERS_PER_ISP``.

Worker processes do not receive the (multi-megabyte) world over the
pipe; they rebuild it from the :class:`~repro.synth.scenario
.ScenarioConfig`, which is deterministic in the seed, and cache it per
process so an N-shard run builds the world at most once per worker.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.engine import EngineConfig
from repro.bqt.logbook import QueryRecord
from repro.core.collection import (
    CollectionResult,
    Q3BlockOutcome,
    Q3Collection,
    run_q12_cell,
    run_q3_block,
)
from repro.core.sampling import SamplingPolicy
from repro.runtime.shards import DEFAULT_ISPS, Q12Cell, ShardSpec, plan_shards
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world

__all__ = ["RuntimeConfig", "ShardResult", "execute_campaign", "run_shard"]


@dataclass(frozen=True)
class RuntimeConfig:
    """How to run a campaign: sharding, parallelism, durability.

    ``backend`` is ``"serial"`` (run shards in this process — the
    deterministic default tests rely on), ``"process"`` (a process
    pool), or ``"auto"`` (process pool exactly when ``workers > 1``).
    """

    shards: int = 1
    workers: int = 1
    backend: str = "auto"
    checkpoint_dir: str | None = None
    resume: bool = False
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.backend not in ("auto", "serial", "process"):
            raise ValueError("backend must be auto, serial, or process")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")

    @property
    def effective_workers(self) -> int:
        """Concurrent shard processes, clamped by politeness.

        Each in-flight shard holds at most one session per storefront,
        so the politeness cap on concurrent sessions per ISP bounds the
        number of shards allowed to run at once.
        """
        return min(self.workers, self.shards, MAX_POLITE_WORKERS_PER_ISP)

    @property
    def effective_backend(self) -> str:
        """The backend actually used (resolves ``"auto"``)."""
        if self.backend == "auto":
            return "process" if self.effective_workers > 1 else "serial"
        return self.backend


@dataclass
class ShardResult:
    """One shard's completed work, keyed for canonical-order merging."""

    index: int
    count: int
    # Q1/Q2 cell → the cell's record stream (replacements inline).
    q12_records: dict[Q12Cell, tuple[QueryRecord, ...]] = field(
        default_factory=dict)
    # Q3 candidate block → its outcome (None when not analyzed).
    q3_outcomes: dict[str, Q3BlockOutcome | None] = field(default_factory=dict)


# Per-process world cache for pool workers: rebuilding the world is the
# expensive part of a shard, and every shard of one campaign shares it.
_WORLD_CACHE: dict[ScenarioConfig, World] = {}


def _world_for(scenario: ScenarioConfig) -> World:
    if scenario not in _WORLD_CACHE:
        _WORLD_CACHE.clear()  # one campaign's world at a time per worker
        _WORLD_CACHE[scenario] = build_world(scenario)
    return _WORLD_CACHE[scenario]


def run_shard(
    scenario: ScenarioConfig,
    spec: ShardSpec,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    world: World | None = None,
) -> ShardResult:
    """Run one shard's cells to completion.

    Top-level (picklable) so it can be submitted to a process pool;
    the serial backend calls it directly with the already-built
    ``world`` to skip the rebuild.
    """
    world = world if world is not None else _world_for(scenario)
    result = ShardResult(index=spec.index, count=spec.count)
    # caf_addresses_by_cbg regroups a whole (ISP, state) footprint per
    # call; cache the grouping across this shard's cells.
    grouped: dict[tuple[str, str], dict] = {}
    for cell in spec.q12_cells:
        key = (cell.isp_id, cell.state)
        if key not in grouped:
            grouped[key] = world.caf_addresses_by_cbg(*key)
        addresses = grouped[key][cell.cbg]
        _plan, records = run_q12_cell(
            world, cell.isp_id, cell.cbg, addresses,
            policy=policy, engine_config=engine_config,
            max_replacements=max_replacements,
        )
        result.q12_records[cell] = tuple(records)
    for block_geoid in spec.q3_blocks:
        result.q3_outcomes[block_geoid] = run_q3_block(
            world, block_geoid, engine_config)
    return result


def _run_shards_serial(
    world: World,
    pending: list[ShardSpec],
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    on_complete,
) -> None:
    for spec in pending:
        on_complete(run_shard(
            world.config, spec, policy=policy, engine_config=engine_config,
            max_replacements=max_replacements, world=world,
        ))


def _run_shards_process(
    world: World,
    pending: list[ShardSpec],
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    workers: int,
    on_complete,
) -> None:
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(run_shard, world.config, spec, policy,
                        engine_config, max_replacements)
            for spec in pending
        ]
        for future in as_completed(futures):
            on_complete(future.result())


def execute_campaign(
    world: World,
    config: RuntimeConfig,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
) -> tuple[CollectionResult, Q3Collection]:
    """Run the full campaign under a runtime configuration.

    Plans the shard partition, restores any checkpointed shards when
    ``config.resume`` is set, runs the remainder on the configured
    backend (checkpointing each shard as it completes), and merges the
    shard results in canonical order. For a fixed world seed the merged
    results are bit-identical to the sequential
    :class:`~repro.core.collection.CollectionCampaign` /
    :func:`~repro.core.collection.collect_q3_dataset` path, for any
    shard count and either backend.
    """
    from repro.runtime.checkpoint import CheckpointStore, campaign_fingerprint
    from repro.runtime.merge import merge_shard_results

    specs = plan_shards(world, config.shards, isps=isps, states=states,
                        q3_states=q3_states)
    completed: dict[int, ShardResult] = {}

    store: CheckpointStore | None = None
    if config.checkpoint_dir is not None:
        fingerprint = campaign_fingerprint(
            world.config, policy, isps, config.shards,
            states=states, q3_states=q3_states,
            max_replacements=max_replacements)
        store = CheckpointStore(config.checkpoint_dir, fingerprint)
        if config.resume:
            completed = store.load_completed()
        else:
            store.clear()

    def on_complete(result: ShardResult) -> None:
        completed[result.index] = result
        if store is not None:
            store.save_shard(result)

    pending = [spec for spec in specs if spec.index not in completed]
    if config.effective_backend == "process" and len(pending) > 1:
        _run_shards_process(world, pending, policy, engine_config,
                            max_replacements, config.effective_workers,
                            on_complete)
    else:
        _run_shards_serial(world, pending, policy, engine_config,
                           max_replacements, on_complete)

    return merge_shard_results(
        world, specs, completed, policy=policy,
        isps=isps, states=states, q3_states=q3_states,
    )
