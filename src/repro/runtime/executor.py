"""Sharded campaign execution.

:func:`execute_campaign` turns the audit's two collections into a
sharded job: plan the shards, run each shard's cells (in process, on a
``concurrent.futures.ProcessPoolExecutor``, on a per-shard asyncio
event loop, and/or on a leased fleet of worker processes — see
:mod:`repro.runtime.distributed`), checkpoint completed shards, and
merge the shard logs back into campaign results that are bit-identical
to the sequential loops in :mod:`repro.core.collection`.

Politeness is enforced the way the paper's fleet enforced it, whatever
the backend:

* a *serial* or *process* shard drives at most one browser session per
  ISP at a time (its cells run sequentially), so concurrent sessions
  per storefront are bounded by the number of in-flight shards — which
  :class:`RuntimeConfig` clamps to ``MAX_POLITE_WORKERS_PER_ISP``;
* an *async* shard interleaves up to ``max_inflight`` sessions against
  different storefronts on one event loop, with a
  :class:`~repro.bqt.aio.PolitenessGate` token bucket holding each
  storefront to :attr:`RuntimeConfig.per_shard_isp_cap` — the global
  cap divided across however many shards run concurrently, so the
  fleet-wide per-ISP concurrency never exceeds the cap *exactly as in
  the serial case*.

Worker processes do not receive the (multi-megabyte) world over the
pipe; they rebuild it from the :class:`~repro.synth.scenario
.ScenarioConfig`, which is deterministic in the seed, and cache it per
process so an N-shard run builds the world at most once per worker.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable

from pathlib import Path

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.engine import EngineConfig
from repro.bqt.logbook import QueryRecord
from repro.core.collection import (
    CollectionResult,
    Q3BlockOutcome,
    Q3Collection,
    run_q12_cell,
    run_q3_block,
)
from repro.core.sampling import SamplingPolicy
from repro.obs.metrics import REGISTRY as _METRICS
from repro.obs.trace import (configure_tracing, publish_trace, span,
                             trace_dir_from_environment, tracing_enabled)
from repro.runtime.shards import DEFAULT_ISPS, Q12Cell, ShardSpec, plan_shards
from repro.synth.world import World, build_world

__all__ = ["RuntimeConfig", "ShardResult", "dispatch_shards",
           "execute_campaign", "run_shard"]

_BACKENDS = ("auto", "serial", "process", "async", "process+async",
             "distributed")

# One event loop's default concurrent-session bound (async backends).
DEFAULT_MAX_INFLIGHT = 8

# on_progress callback: (completed shards, total shards, newest result,
# restored) — ``restored`` is True when the shard came back from a
# checkpoint instead of being executed, so rate/ETA estimators can
# exclude it.
ProgressCallback = Callable[[int, int, "ShardResult", bool], None]


@dataclass(frozen=True)
class RuntimeConfig:
    """How to run a campaign: sharding, parallelism, durability.

    ``backend`` is ``"serial"`` (run shards in this process — the
    deterministic default tests rely on), ``"process"`` (a process
    pool), ``"async"`` (shards run one at a time, but each shard's
    cells interleave on an asyncio event loop), ``"process+async"``
    (a process pool whose workers each run an event loop),
    ``"distributed"`` (a coordinator leases shards to worker
    processes over sockets — see :mod:`repro.runtime.distributed`;
    ``workers`` sets the fleet size, and ``max_inflight`` additionally
    runs each worker's shard on an event loop), or ``"auto"`` (process
    pool exactly when ``workers > 1``).

    ``max_inflight`` bounds one event loop's total concurrent sessions
    across all storefronts. Setting it is a request for the async
    engine: under ``backend="auto"`` it selects an async backend
    (``None``, the default, leaves "auto" resolving to serial/process
    and async backends on ``DEFAULT_MAX_INFLIGHT``).

    ``lease_timeout`` (distributed only) is how long the coordinator
    waits for a worker's result frame before presuming the worker
    dead and re-leasing its shard. It must comfortably exceed the
    slowest single shard's compute time, or healthy workers will be
    abandoned mid-shard and the campaign can never finish; raise it
    for big scales. ``None`` uses the distributed module's default.

    ``worker_address`` (distributed only) is where the coordinator
    listens for workers: ``"host:port"`` binds a TCP socket (port 0
    picks a free port), anything else is a Unix socket path. ``None``,
    the default, uses a Unix socket in a private temp directory —
    right for spawned local fleets; give an address when workers join
    from other hosts or when Unix sockets are unavailable.
    """

    shards: int = 1
    workers: int = 1
    backend: str = "auto"
    max_inflight: int | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    cache_dir: str | None = None
    lease_timeout: float | None = None
    worker_address: str | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {', '.join(_BACKENDS)}")
        if self.max_inflight is not None:
            if self.max_inflight < 1:
                raise ValueError("max_inflight must be positive")
            if self.backend in ("serial", "process"):
                # An in-flight budget must never be silently ignored.
                raise ValueError(
                    f"max_inflight requires an async backend, "
                    f"not {self.backend!r}")
        if self.lease_timeout is not None:
            if self.lease_timeout <= 0:
                raise ValueError("lease_timeout must be positive")
            if self.backend != "distributed":
                # A lease timeout must never be silently ignored.
                raise ValueError(
                    f"lease_timeout requires the distributed backend, "
                    f"not {self.backend!r}")
        if self.worker_address is not None:
            if self.backend != "distributed":
                # A listen address must never be silently ignored.
                raise ValueError(
                    f"worker_address requires the distributed backend, "
                    f"not {self.backend!r}")
            if not self.worker_address:
                raise ValueError("worker_address must be non-empty")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")

    @property
    def effective_workers(self) -> int:
        """Concurrent shard processes, clamped by politeness.

        Each in-flight shard holds at most
        :attr:`per_shard_isp_cap` sessions per storefront, so the
        politeness cap on concurrent sessions per ISP bounds the
        number of shards allowed to run at once.
        """
        return min(self.workers, self.shards, MAX_POLITE_WORKERS_PER_ISP)

    @property
    def effective_backend(self) -> str:
        """The backend actually used.

        Resolves ``"auto"`` (async when ``max_inflight`` was set —
        an in-flight budget must not be silently ignored — else
        process iff parallel), and promotes ``"async"`` with multiple
        workers to ``"process+async"`` — silently dropping requested
        parallelism would be a multiple-of-workers slowdown with no
        diagnostic.
        """
        if self.backend == "auto":
            if self.max_inflight is not None:
                return ("process+async" if self.effective_workers > 1
                        else "async")
            return "process" if self.effective_workers > 1 else "serial"
        if self.backend == "async" and self.effective_workers > 1:
            return "process+async"
        return self.backend

    @property
    def effective_max_inflight(self) -> int:
        """The event-loop session bound actually used."""
        return (DEFAULT_MAX_INFLIGHT if self.max_inflight is None
                else self.max_inflight)

    @property
    def uses_async(self) -> bool:
        """Whether shards run their cells on an asyncio event loop.

        Distributed workers are sync by default; an explicit
        ``max_inflight`` asks them to interleave their shard's cells
        on an event loop, exactly like ``process+async`` workers.
        """
        if self.effective_backend == "distributed":
            return self.max_inflight is not None
        return self.effective_backend in ("async", "process+async")

    @property
    def concurrent_shards(self) -> int:
        """Shards in flight at once under the effective backend."""
        if self.effective_backend in ("process", "process+async",
                                      "distributed"):
            return self.effective_workers
        return 1

    def per_shard_isp_cap_for(self, pending: int) -> int:
        """Each shard's per-ISP session budget, ``pending`` shards out.

        The global politeness cap is floor-divided across the shards
        that can actually run concurrently — no more than ``pending``
        remain, so a resumed tail is not throttled to a budget sized
        for a full fleet. The sum over in-flight shards is a hard
        upper bound at ``MAX_POLITE_WORKERS_PER_ISP``; it can never be
        exceeded, though non-divisor counts strand part of the budget
        (8 // 3 = 2 leaves two sessions unused). Non-async shards
        drive one session at a time by construction.
        """
        if not self.uses_async:
            return 1
        inflight = min(self.concurrent_shards, max(1, pending))
        return max(1, MAX_POLITE_WORKERS_PER_ISP // inflight)

    @property
    def per_shard_isp_cap(self) -> int:
        """Each shard's per-ISP budget with the full partition pending."""
        return self.per_shard_isp_cap_for(self.shards)


@dataclass
class ShardResult:
    """One shard's completed work, keyed for canonical-order merging."""

    index: int
    count: int
    # Q1/Q2 cell → the cell's record stream (replacements inline).
    q12_records: dict[Q12Cell, tuple[QueryRecord, ...]] = field(
        default_factory=dict)
    # Q3 candidate block → its outcome (None when not analyzed).
    q3_outcomes: dict[str, Q3BlockOutcome | None] = field(default_factory=dict)
    # ISP → max concurrent in-flight sessions this shard held against
    # it (politeness evidence; diagnostic, not checkpointed).
    politeness: dict[str, int] = field(default_factory=dict)


# Per-process world cache for pool workers: rebuilding the world is the
# expensive part of a shard, and every shard of one campaign shares it.
# Keys are ScenarioConfig or any hashable recipe with a .realize()
# (repro.synth.churn.WaveScenario — evolved panel-wave worlds).
_WORLD_CACHE: dict = {}


def _world_for(scenario) -> World:
    if scenario not in _WORLD_CACHE:
        _WORLD_CACHE.clear()  # one campaign's world at a time per worker
        realize = getattr(scenario, "realize", None)
        _WORLD_CACHE[scenario] = (realize() if realize is not None
                                  else build_world(scenario))
    return _WORLD_CACHE[scenario]


def run_shard(
    scenario,
    spec: ShardSpec,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    world: World | None = None,
    use_async: bool = False,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    per_isp_cap: int = MAX_POLITE_WORKERS_PER_ISP,
) -> ShardResult:
    """Run one shard's cells to completion.

    Top-level (picklable) so it can be submitted to a process pool;
    the serial backend calls it directly with the already-built
    ``world`` to skip the rebuild. With ``use_async`` the shard's
    cells interleave on a fresh event loop (bounded by
    ``max_inflight`` total and ``per_isp_cap`` per storefront) —
    producing the same records, reassembled in canonical cell order.
    """
    world = world if world is not None else _world_for(scenario)
    with span("shard.run", index=spec.index,
              cells=len(spec.q12_cells) + len(spec.q3_blocks)):
        if use_async:
            from repro.bqt.aio import run_cells_async

            q12_records, q3_outcomes, watermarks = asyncio.run(
                run_cells_async(
                    world, spec.q12_cells, spec.q3_blocks,
                    policy=policy, engine_config=engine_config,
                    max_replacements=max_replacements,
                    max_inflight=max_inflight, per_isp_cap=per_isp_cap,
                ))
            result = ShardResult(index=spec.index, count=spec.count,
                                 politeness=watermarks)
            # Completion order is nondeterministic; store canonically.
            for cell in spec.q12_cells:
                result.q12_records[cell] = q12_records[cell]
            for block_geoid in spec.q3_blocks:
                result.q3_outcomes[block_geoid] = q3_outcomes[block_geoid]
            return result
        result = ShardResult(index=spec.index, count=spec.count)
        # caf_addresses_by_cbg regroups a whole (ISP, state) footprint
        # per call; cache the grouping across this shard's cells.
        grouped: dict[tuple[str, str], dict] = {}
        for cell in spec.q12_cells:
            key = (cell.isp_id, cell.state)
            if key not in grouped:
                grouped[key] = world.caf_addresses_by_cbg(*key)
            addresses = grouped[key][cell.cbg]
            _plan, records = run_q12_cell(
                world, cell.isp_id, cell.cbg, addresses,
                policy=policy, engine_config=engine_config,
                max_replacements=max_replacements,
            )
            result.q12_records[cell] = tuple(records)
            result.politeness[cell.isp_id] = 1
        for block_geoid in spec.q3_blocks:
            outcome = run_q3_block(world, block_geoid, engine_config)
            result.q3_outcomes[block_geoid] = outcome
            if outcome is not None:
                for record in outcome.records:
                    result.politeness[record.isp_id] = 1
        return result


def _run_shards_serial(
    world: World,
    pending: list[ShardSpec],
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    config: RuntimeConfig,
    per_isp_cap: int,
    on_complete,
    scenario,
) -> None:
    for spec in pending:
        on_complete(run_shard(
            scenario, spec, policy=policy, engine_config=engine_config,
            max_replacements=max_replacements, world=world,
            use_async=config.uses_async,
            max_inflight=config.effective_max_inflight,
            per_isp_cap=per_isp_cap,
        ))


def _run_shards_process(
    world: World,
    pending: list[ShardSpec],
    policy: SamplingPolicy | None,
    engine_config: EngineConfig | None,
    max_replacements: int,
    config: RuntimeConfig,
    per_isp_cap: int,
    on_complete,
    scenario,
) -> None:
    with ProcessPoolExecutor(max_workers=config.effective_workers) as pool:
        futures = [
            pool.submit(run_shard, scenario, spec, policy,
                        engine_config, max_replacements,
                        use_async=config.uses_async,
                        max_inflight=config.effective_max_inflight,
                        per_isp_cap=per_isp_cap)
            for spec in pending
        ]
        for future in as_completed(futures):
            on_complete(future.result())


def dispatch_shards(
    world: World,
    pending: list[ShardSpec],
    config: RuntimeConfig,
    on_complete,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    scenario=None,
) -> None:
    """Run ``pending`` shard specs on the configured backend.

    The execution core shared by :func:`execute_campaign` and the
    longitudinal delta collector (:mod:`repro.longitudinal.campaign`),
    which runs arbitrary *subsets* of a campaign's cells. ``scenario``
    is the world recipe shipped to worker processes; it defaults to
    ``world.config`` and must be overridden (with a
    :class:`~repro.synth.churn.WaveScenario`) when ``world`` is an
    evolved wave world that its config alone cannot rebuild.

    ``on_complete`` fires once per finished shard, serialized, in
    completion order.
    """
    if not pending:
        return
    scenario = scenario if scenario is not None else world.config
    # Budget for the shards actually left to run: a resumed tail gets
    # the politeness headroom its smaller in-flight count allows.
    per_isp_cap = config.per_shard_isp_cap_for(len(pending))
    if config.effective_backend == "distributed":
        from repro.runtime.distributed import run_shards_distributed

        run_shards_distributed(world, pending, policy, engine_config,
                               max_replacements, config, per_isp_cap,
                               on_complete,
                               lease_timeout=config.lease_timeout,
                               scenario=scenario)
    elif (config.effective_backend in ("process", "process+async")
            and len(pending) > 1):
        _run_shards_process(world, pending, policy, engine_config,
                            max_replacements, config, per_isp_cap,
                            on_complete, scenario)
    else:
        _run_shards_serial(world, pending, policy, engine_config,
                           max_replacements, config, per_isp_cap,
                           on_complete, scenario)


def execute_campaign(
    world: World,
    config: RuntimeConfig,
    policy: SamplingPolicy | None = None,
    engine_config: EngineConfig | None = None,
    max_replacements: int = 2,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
    on_progress: ProgressCallback | None = None,
) -> tuple[CollectionResult, Q3Collection]:
    """Run the full campaign under a runtime configuration.

    Plans the shard partition, restores any checkpointed shards when
    ``config.resume`` is set, runs the remainder on the configured
    backend (checkpointing each shard as it completes), and merges the
    shard results in canonical order. For a fixed world seed the merged
    results are bit-identical to the sequential
    :class:`~repro.core.collection.CollectionCampaign` /
    :func:`~repro.core.collection.collect_q3_dataset` path, for any
    shard count and every backend.

    ``on_progress`` (when given) fires after each newly completed
    shard with ``(completed, total, result, restored)`` — the CLI uses
    it for per-shard progress and ETA lines. Shards restored from a
    checkpoint fire with ``restored=True`` (in index order, before any
    shard executes) so rate estimators can exclude them.
    """
    from repro.runtime.checkpoint import CheckpointStore, campaign_fingerprint
    from repro.runtime.merge import merge_shard_results

    fingerprint = campaign_fingerprint(
        world.config, policy, isps, config.shards,
        states=states, q3_states=q3_states,
        max_replacements=max_replacements)
    if tracing_enabled():
        configure_tracing(fingerprint, site="coordinator")

    with span("campaign", backend=config.effective_backend,
              shards=config.shards):
        with span("campaign.plan"):
            specs = plan_shards(world, config.shards, isps=isps,
                                states=states, q3_states=q3_states)
        completed: dict[int, ShardResult] = {}

        store: CheckpointStore | None = None
        if config.checkpoint_dir is not None:
            store = CheckpointStore(config.checkpoint_dir, fingerprint)
            if config.resume:
                with span("campaign.restore"):
                    completed = store.load_completed()
                _METRICS.counter("shards_restored_total").inc(len(completed))
                if on_progress is not None:
                    for position, index in enumerate(sorted(completed),
                                                     start=1):
                        on_progress(position, len(specs),
                                    completed[index], True)
            else:
                store.clear()

        completions = _METRICS.counter("shards_completed_total")

        def on_complete(result: ShardResult) -> None:
            completed[result.index] = result
            if store is not None:
                store.save_shard(result)
            completions.inc()
            if on_progress is not None:
                on_progress(len(completed), len(specs), result, False)

        pending = [spec for spec in specs if spec.index not in completed]
        _METRICS.counter("shards_dispatched_total").inc(len(pending))
        with span("campaign.dispatch", shards=len(pending)):
            dispatch_shards(world, pending, config, on_complete,
                            policy=policy, engine_config=engine_config,
                            max_replacements=max_replacements)

        with span("campaign.merge"):
            merged = merge_shard_results(
                world, specs, completed, policy=policy,
                isps=isps, states=states, q3_states=q3_states,
            )

    if tracing_enabled():
        trace_root = trace_dir_from_environment()
        if trace_root is None and config.checkpoint_dir is not None:
            trace_root = Path(config.checkpoint_dir) / "traces"
        publish_trace(trace_root, fingerprint)
    return merged
