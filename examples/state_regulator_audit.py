"""A state regulator audits one ISP's CAF certifications.

Motivated by the paper's Mississippi example: the state Public Service
Commission subpoenaed AT&T over its reported service to 133k locations.
This example plays the regulator: it audits AT&T's certified addresses
in two states, contrasts the external audit with USAC's own sampled
verification review, checks the density pattern, and writes the
evidence table to CSV.

Run with::

    python examples/state_regulator_audit.py
"""

from pathlib import Path

from repro.core.audit import AuditDataset
from repro.core.collection import CollectionCampaign
from repro.stats.correlation import spearman
from repro.synth import ScenarioConfig, build_world
from repro.tabular import render_table, write_csv

ISP = "att"
STATES = ("MS", "GA")


def main() -> None:
    world = build_world(ScenarioConfig.tiny(seed=7))

    print(f"== External audit of {ISP} in {', '.join(STATES)} ==\n")
    campaign = CollectionCampaign(world)
    collection = campaign.run(isps=(ISP,), states=STATES)
    audit = AuditDataset(collection.log, collection.cbg_totals, world=world)

    for state in STATES:
        rate = audit.serviceability_rate(isp_id=ISP, state=state)
        print(f"  {state}: serviceability {rate:6.1%} "
              f"({len(audit.table.where_equal(state=state))} addresses audited)")

    # The density fingerprint: AT&T serves near cities (except MS).
    print("\nDensity correlation (Spearman, CBG serviceability vs density):")
    rates = audit.cbg_rates("served")
    for state in STATES:
        sub = rates.where_equal(state=state)
        if len(sub) >= 3:
            result = spearman(sub["population_density"], sub["rate"])
            print(f"  {state}: {result.describe()}")

    # Contrast with USAC's own oversight: a small sampled review.
    print("\nUSAC-style verification review (1% sample):")
    review = world.hubb.run_verification_review(ISP, world.ground_truth)
    print(f"  sampled {review.sampled} certified locations, "
          f"compliance gap {review.compliance_gap:.1%}")
    print(f"  external audit unserved share: "
          f"{1.0 - audit.serviceability_rate():.1%} "
          "(same signal, but address-level and public)")

    out = Path("audit_evidence.csv")
    write_csv(audit.table, out)
    print(f"\nEvidence table written to {out} ({len(audit.table)} rows)")
    print()
    print(render_table(audit.cbg_rates("served").head(10),
                       title="Per-CBG serviceability (first 10 rows)"))


if __name__ == "__main__":
    main()
