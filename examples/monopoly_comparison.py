"""Q3: do regulated monopolies beat unregulated ones?

Reproduces the paper's Section 4.3 workflow end to end: filter census
blocks to those served exclusively by BQT-queryable ISPs (Form 477 +
National Broadband Map), query the incumbent at every CAF and non-CAF
address, classify each block Type A/B/C, and compare average advertised
speeds between the incumbent's regulated (CAF), unregulated-monopoly
and competition modes.

Run with::

    python examples/monopoly_comparison.py
"""

from repro.core.collection import collect_q3_dataset
from repro.core.monopoly import analyze_q3
from repro.synth import ScenarioConfig, build_world


def describe_cdf(label: str, cdf) -> None:
    print(f"  {label}: median {cdf.median():7.1f} Mbps, "
          f"p80 {cdf.quantile(0.8):7.1f} Mbps (n={cdf.n})")


def main() -> None:
    world = build_world(ScenarioConfig.tiny(seed=3))
    print("Collecting the Q3 dataset (incumbent + cable competitors)…")
    collection = collect_q3_dataset(world)
    print(f"  queried {len(collection.log)} (ISP, address) pairs across "
          f"{len(collection.analyzed_blocks)} blocks\n")

    analysis = analyze_q3(collection)
    counts = analysis.type_counts()
    print(f"Block types: A={counts['A']} (CAF+monopoly), "
          f"B={counts['B']} (CAF+competition), C={counts['C']} (all three)\n")

    shares = analysis.outcome_shares("A", "monopoly")
    print("Type A outcomes (paper: 55% tie / 27% CAF / 18% monopoly):")
    print(f"  tie {shares['tie']:.0%} / CAF better {shares['caf']:.0%} / "
          f"monopoly better {shares['rival']:.0%}\n")

    print("Where CAF wins (Figure 4b/4c):")
    caf_cdf, monopoly_cdf = analysis.speed_cdfs("A", "monopoly", "caf")
    describe_cdf("CAF speeds     ", caf_cdf)
    describe_cdf("monopoly speeds", monopoly_cdf)
    increase = analysis.pct_increase_cdf("A", "monopoly", "caf")
    print(f"  improvement: median {increase.median():.0f}%, "
          f"p80 {increase.quantile(0.8):.0f}% (paper: 75% / 400%)\n")

    print("Where monopoly wins (Figure 11a/11b):")
    loss = analysis.pct_increase_cdf("A", "monopoly", "rival")
    print(f"  monopoly lead: median {loss.median():.0f}%, "
          f"p80 {loss.quantile(0.8):.0f}% (paper: 45% / 130%)\n")

    cdfs = analysis.caf_speed_cdf_by_type()
    if "B" in cdfs:
        print("Competition spillover (Figure 6a):")
        describe_cdf("CAF speeds in Type A", cdfs["A"])
        describe_cdf("CAF speeds in Type B", cdfs["B"])
        print("  → CAF addresses near competition get faster plans; "
              "regulation alone helps only inconsistently.")


if __name__ == "__main__":
    main()
