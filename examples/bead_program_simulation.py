"""Simulating a BEAD program informed by the CAF audit.

The paper's final recommendation chain, executed end to end:

1. Audit CAF (the paper's study) to learn each ISP's track record.
2. Allocate BEAD funds across states by unserved locations.
3. Award state subgrants *weighted by past CAF compliance* — the
   paper's "officials should consider past compliance … when deciding
   how to allocate new funds".
4. Design the oversight program for the awards: review sizes with a
   detection-power target, an external audit sized by the sampling-
   floor analysis, and the expected audit duration.

Run with::

    python examples/bead_program_simulation.py
"""

from repro import ScenarioConfig, run_full_audit
from repro.bead import BeadProgram, OversightPlanner, allocate_bead_funds

ISPS = ("att", "centurylink", "frontier", "consolidated")


def main() -> None:
    print("Step 1 — audit CAF to establish track records…")
    report = run_full_audit(scenario=ScenarioConfig.tiny(seed=5))
    weights = BeadProgram.compliance_weights(report.audit, ISPS)
    for isp, weight in sorted(weights.items(), key=lambda kv: -kv[1]):
        print(f"  {isp}: audited serviceability {weight:.1%}")

    print("\nStep 2 — allocate BEAD funds by unserved locations…")
    audit_table = report.audit.table
    unserved_by_state = {}
    for state in report.audit.states():
        sub = audit_table.where_equal(state=state)
        unserved_by_state[state] = int(
            (~sub["served"].astype(bool)).sum())
    allocation = allocate_bead_funds(unserved_by_state)
    for state, amount in allocation.top_states(5):
        print(f"  {state}: ${amount / 1e9:5.2f}B "
              f"({unserved_by_state[state]} audited-unserved locations)")

    print("\nStep 3 — award one state's subgrants, compliance-weighted…")
    program = BeadProgram(allocation=allocation)
    state = max(unserved_by_state, key=unserved_by_state.get)
    bids = {"att": 1_000, "frontier": 800, "centurylink": 900}
    awards = program.split_state_fund(state, bids,
                                      compliance_weights=weights)
    print(f"  {state} (fund ${allocation.amount_for(state) / 1e9:.2f}B):")
    for award in sorted(awards, key=lambda a: -a.amount_usd):
        print(f"    {award.isp_id}: ${award.amount_usd / 1e6:8.1f}M for "
              f"{award.locations} locations "
              f"(${award.support_per_location:,.0f}/location)")
    print("  → an ISP that certified phantom CAF coverage now bids "
          "with a handicap.")

    print("\nStep 4 — design the oversight program for the awards…")
    planner = OversightPlanner(suspected_unserved_fraction=0.10,
                               detection_power_target=0.99)
    # Use each ISP's audited CBG size profile as the BEAD footprint.
    cbg_sizes = {
        isp: [plan.population_size
              for (i, _cbg), plan in report.collection.plans.items()
              if i == isp]
        for isp in bids
    }
    plan = planner.plan(cbg_sizes)
    print(plan.render())


if __name__ == "__main__":
    main()
