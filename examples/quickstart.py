"""Quickstart: run the full CAF audit on a synthetic world.

Builds a small study universe (15 states, 4 CAF ISPs), runs the paper's
complete pipeline — stratified sampling, BQT querying, weighted Q1/Q2
metrics, and the Q3 monopoly comparison — and prints the headline
numbers next to the paper's published values.

Run with::

    python examples/quickstart.py [seed]
"""

import sys

from repro import ScenarioConfig, run_full_audit


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    print(f"Building world and running the audit (seed={seed})…\n")
    report = run_full_audit(scenario=ScenarioConfig.tiny(seed=seed))

    print("\n".join(report.summary_lines()))

    print("\nPer-state serviceability (weighted):")
    for state, rate in sorted(report.serviceability.rate_by_state().items()):
        print(f"  {state}: {rate:6.1%}")

    counts = report.monopoly.type_counts()
    print(f"\nQ3 blocks analyzed: {sum(counts.values())} "
          f"(Type A {counts['A']}, B {counts['B']}, C {counts['C']})")
    shares = report.monopoly.outcome_shares("A", "monopoly")
    print("Type A outcomes: "
          f"tie {shares['tie']:.0%}, CAF better {shares['caf']:.0%}, "
          f"monopoly better {shares['rival']:.0%} (paper: 55%/27%/18%)")


if __name__ == "__main__":
    main()
