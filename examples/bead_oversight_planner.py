"""Designing post-hoc oversight for a BEAD-style program.

The paper's closing argument: the $42B BEAD program needs independent
post-hoc verification of ISP claims, and the paper's framework applies
directly. This example uses the reproduction as a *planning tool* for
such an oversight program:

1. How much querying does an audit cost at different sampling floors
   (the Appendix 8.2 trade-off)?
2. How small can the sample get before the serviceability estimate
   drifts (sensitivity analysis)?
3. How does an external audit compare to USAC-style sampled reviews of
   self-reported data?

Run with::

    python examples/bead_oversight_planner.py
"""

from repro.core.audit import AuditDataset
from repro.core.collection import CollectionCampaign
from repro.core.sampling import SamplingPolicy
from repro.core.sensitivity import run_sensitivity_analysis
from repro.synth import ScenarioConfig, build_world

ISP = "centurylink"
STATES = ("NC", "OH", "WI")


def audit_with_policy(world, policy: SamplingPolicy):
    campaign = CollectionCampaign(world, policy=policy)
    collection = campaign.run(isps=(ISP,), states=STATES)
    audit = AuditDataset(collection.log, collection.cbg_totals, world=world)
    return audit, collection


def main() -> None:
    world = build_world(ScenarioConfig.tiny(seed=11))

    print("== 1. Audit cost vs sampling floor ==")
    print(f"   (auditing {ISP} in {', '.join(STATES)})\n")
    for floor in (10, 30, 60):
        policy = SamplingPolicy(min_samples=floor, sampling_fraction=0.10)
        audit, collection = audit_with_policy(world, policy)
        hours = collection.log.total_virtual_seconds() / 3600.0
        print(f"  floor {floor:>2}: {len(collection.log):>5} queries, "
              f"{hours:6.1f} sequential query-hours, "
              f"serviceability {audit.serviceability_rate():6.1%}")

    print("\n== 2. Sampling-rate sensitivity (Appendix 8.2 protocol) ==\n")
    sensitivity = run_sensitivity_analysis(
        world, isp_id=ISP, num_cbgs=8, rates=(0.05, 0.10, 0.25))
    for rate, (aggregate_err, max_cbg_err) in sorted(
            sensitivity.deltas_by_rate.items()):
        print(f"  sample {rate:4.0%} of each CBG → "
              f"aggregate |Δ| {aggregate_err:4.1f} pp, "
              f"worst CBG |Δ| {max_cbg_err:4.1f} pp")
    print(f"  (over {sensitivity.num_cbgs} large CBGs; paper: errors < 5%)")

    print("\n== 3. Self-reported review vs independent audit ==\n")
    review = world.hubb.run_verification_review(ISP, world.ground_truth,
                                                sample_fraction=0.02)
    audit, _ = audit_with_policy(world, SamplingPolicy())
    print(f"  USAC-style review:  {review.sampled} sampled locations, "
          f"compliance gap {review.compliance_gap:6.1%}")
    print(f"  independent audit:  unserved share "
          f"{1 - audit.serviceability_rate():6.1%}, plus plan-level "
          "compliance evidence the review never sees")
    print("\nRecommendation: BEAD oversight should budget for "
          "address-level external audits with a per-CBG floor of ~30 — "
          "the estimate is already stable there, and the cost grows "
          "linearly beyond it.")


if __name__ == "__main__":
    main()
