"""Scripting against the open-data portal and drawing the figures.

Plays the downstream analyst: pull certified deployments from the
(simulated) USAC open-data portal with filters and pagination, join in
audited outcomes, and render the paper's key distributions as terminal
figures.

Run with::

    python examples/portal_and_figures.py
"""

from repro import ScenarioConfig, run_full_audit
from repro.analysis.plots import ascii_bars, ascii_cdf
from repro.stats.ecdf import ECDF
from repro.usac.portal import OpenDataPortal, PortalQuery


def main() -> None:
    report = run_full_audit(scenario=ScenarioConfig.tiny(seed=2))
    portal = OpenDataPortal(report.world.caf_map)

    print("== Portal queries (the opendata.usac.org workflow) ==\n")
    for isp in ("att", "centurylink", "frontier", "consolidated"):
        print(f"  {isp}: {portal.count(isp_id=isp):,} certified locations")
    mississippi = PortalQuery(filters={"isp_id": "att",
                                       "state_abbreviation": "MS"},
                              limit=500)
    records = list(portal.fetch_all(mississippi))
    print(f"\n  AT&T in Mississippi: {len(records)} certified locations, "
          f"all at {records[0].certified_download_mbps:g} Mbps certified")

    print("\n== Figure 1f as text: certified speeds are a formality ==\n")
    certified = ECDF([r.certified_download_mbps
                      for r in portal.fetch_all(
                          PortalQuery(filters={"isp_id": "consolidated"}))])
    print(ascii_cdf({"consolidated certified": certified.series()},
                    log_x=True, height=8))

    print("\n== Serviceability by ISP (Figure 2a summary) ==\n")
    rates = report.serviceability.rate_by_isp()
    print(ascii_bars({isp: rate for isp, rate in sorted(rates.items())},
                     maximum=1.0, value_format=".1%"))

    print("\n== Figure 4b as text: CAF vs monopoly where CAF wins ==\n")
    caf_cdf, monopoly_cdf = report.monopoly.speed_cdfs("A", "monopoly", "caf")
    print(ascii_cdf({"CAF": caf_cdf.series(),
                     "monopoly": monopoly_cdf.series()},
                    log_x=True, height=10))


if __name__ == "__main__":
    main()
